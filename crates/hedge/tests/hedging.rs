//! Integration tests for the speculative-execution runtime: hedged
//! wins with loser cancellation, reissue-budget adherence, and full
//! command-set round-trips over real TCP sockets.

use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
use kvstore::resp::{decode_command, decode_reply, encode_command, encode_reply};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

use std::time::Duration;

fn small_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..100u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..100u32).map(|i| i * 3).collect()),
    );
    let (reply, _) = store.execute(&Command::Set("greeting".into(), "hello".into()));
    assert_eq!(reply, Reply::Ok);
    store
}

fn monster_store() -> KvStore {
    let mut store = small_store();
    store.load_set("big1", IntSet::from_unsorted((0..400_000u32).collect()));
    store.load_set(
        "big2",
        IntSet::from_unsorted((200_000..600_000u32).collect()),
    );
    store
}

/// (1) A hedged request returns the fast replica's answer while the
/// slow replica's copy is cancelled before it ever executes.
#[test]
fn hedged_request_wins_on_fast_replica_and_cancels_slow() {
    // Replica 0 will be head-of-line blocked by a monster query;
    // replica 1 stays idle.
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
        ..TcpServerConfig::default()
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            // Hedge aggressively after 5 ms, always.
            policy: ReissuePolicy::single_d(5.0),
            online: None,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replica 0 with a monster intersection sent on
    // a raw side connection (~400k cost units * 2µs ≈ 800 ms of
    // service time).
    use std::io::Write as _;
    let mut side = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut frame = bytes::BytesMut::new();
    encode_command(
        &Command::SInterCard("big1".into(), "big2".into()),
        &mut frame,
    );
    side.write_all(&frame).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it occupy replica 0

    // The hedged query: its primary lands on the blocked replica 0, so
    // only the 5 ms reissue to idle replica 1 can answer quickly — and
    // the blocked copy must be retracted.
    let t0 = std::time::Instant::now();
    let reply = client
        .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
        .unwrap();
    let elapsed = t0.elapsed();

    // Correct answer from the fast replica: |{0, 2, ...198} ∩ {0, 3,
    // ..., 297}| = multiples of 6 below 200 = 34.
    assert_eq!(reply, Reply::Int(34), "intersection cardinality");
    // Far faster than the blocked replica could answer.
    assert!(
        elapsed < Duration::from_millis(500),
        "hedged query took {elapsed:?}; cancellation/hedging failed"
    );

    let stats = client.stats();
    assert!(stats.reissues >= 1, "the 5 ms hedge must have fired");
    assert_eq!(
        stats.reissue_wins, 1,
        "the idle replica must win: {stats:?}"
    );

    // The loser's cancellation confirmation arrives asynchronously;
    // poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while client.stats().cancelled_in_time == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = client.stats();
    assert!(
        stats.cancelled_in_time >= 1,
        "the blocked replica's copy should be retracted: {stats:?}"
    );
    // And the blocked replica must never execute the retracted query:
    // the only command it runs is the monster itself.
    assert_eq!(
        servers[0].stats().commands,
        1,
        "retracted work must not run"
    );
}

/// (1b) A two-stage DoubleR race: replicas 0 *and* 1 are head-of-line
/// blocked, so the stage-1 reissue stalls like the primary and only
/// the stage-2 reissue — dispatched strictly later, to the one replica
/// neither earlier attempt touched — can answer. Both losers must be
/// retracted, and the per-stage counters must attribute one dispatch
/// to each stage.
#[test]
fn double_r_second_stage_wins_when_first_two_replicas_stall() {
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
        ..TcpServerConfig::default()
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            // Stage 1 at 5 ms, stage 2 at 10 ms, both deterministic.
            policy: ReissuePolicy::double_r(5.0, 1.0, 10.0, 1.0),
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replicas 0 and 1 with monster intersections
    // (~800 ms of service time each) sent on raw side connections.
    use std::io::Write as _;
    let mut sides = Vec::new();
    for addr in &addrs[..2] {
        let mut side = std::net::TcpStream::connect(addr).unwrap();
        let mut frame = bytes::BytesMut::new();
        encode_command(
            &Command::SInterCard("big1".into(), "big2".into()),
            &mut frame,
        );
        side.write_all(&frame).unwrap();
        sides.push(side);
    }
    std::thread::sleep(Duration::from_millis(50)); // let them occupy 0 and 1

    // Primary → replica 0 (blocked). Stage 1 excludes the primary and
    // lands on replica 1 (blocked; all-cold health scores tie and the
    // lowest index wins). Stage 2 excludes both and must reach the
    // idle replica 2 — the only attempt that can answer fast.
    let t0 = std::time::Instant::now();
    let reply = client
        .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
        .unwrap();
    let elapsed = t0.elapsed();

    assert_eq!(reply, Reply::Int(34), "intersection cardinality");
    assert!(
        elapsed < Duration::from_millis(500),
        "DoubleR query took {elapsed:?}; the stage-2 rescue failed"
    );

    let stats = client.stats();
    assert_eq!(stats.reissues, 2, "both stages must have dispatched");
    assert_eq!(
        stats.reissues_by_stage[0], 1,
        "one stage-1 dispatch: {stats:?}"
    );
    assert_eq!(
        stats.reissues_by_stage[1], 1,
        "one stage-2 dispatch: {stats:?}"
    );
    assert_eq!(
        stats.reissues_by_stage.iter().sum::<u64>(),
        stats.reissues,
        "per-stage counts must sum to the total"
    );
    assert_eq!(stats.reissue_wins, 1, "a reissue must win: {stats:?}");
    assert_eq!(
        client.reissue_target_counts(),
        vec![0, 1, 1],
        "stage targets must explore fresh replicas in order"
    );

    // Both losers' cancellation confirmations arrive asynchronously.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while client.stats().cancelled_in_time < 2 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = client.stats();
    assert_eq!(
        stats.cancelled_in_time, 2,
        "primary and stage-1 reissue must both be retracted: {stats:?}"
    );
    // Neither blocked replica may ever execute the retracted copy: the
    // only command each runs is its monster.
    for server in &servers[..2] {
        assert_eq!(server.stats().commands, 1, "retracted work must not run");
    }
}

/// (1c) A dead replica must not decide a race: its near-instant
/// transport failures would otherwise be the first "completion" in
/// the select, cancelling a healthy in-flight primary and failing a
/// query that hedging was supposed to protect. The failed attempt
/// drops out instead, and the race continues until a real reply wins.
#[test]
fn failed_reissue_does_not_kill_healthy_primary() {
    use kvstore::resp::decode_command;
    use std::io::Read as _;

    // Replica 0: healthy but slow enough (~20 ms per query) that the
    // hedge timer always fires first.
    let healthy = TcpServer::bind(
        "127.0.0.1:0",
        small_store(),
        TcpServerConfig {
            nanos_per_op: 100_000,
            ..TcpServerConfig::default()
        },
    )
    .unwrap();
    // "Replica" 1: accepts connections, then slams every one shut on
    // its first frame — every request (and its one reconnect retry)
    // fails within a millisecond or two. It never answers anything.
    let dead_listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead_addr = dead_listener.local_addr().unwrap();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let dead_thread = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let Ok((mut s, _)) = dead_listener.accept() else {
                    break;
                };
                // One thread per connection so every pooled socket
                // fails fast (a single sequential handler would leave
                // the others hanging instead of erroring).
                std::thread::spawn(move || {
                    let mut chunk = [0u8; 256];
                    let mut buf = bytes::BytesMut::new();
                    // Wait for one full frame so the client's write
                    // succeeds, then close abruptly mid-reply.
                    while let Ok(n) = s.read(&mut chunk) {
                        if n == 0 {
                            return;
                        }
                        buf.extend_from_slice(&chunk[..n]);
                        if matches!(decode_command(&mut buf), Ok(Some(_))) {
                            return;
                        }
                    }
                });
            }
        })
    };

    let client = HedgedClient::connect(
        &[healthy.local_addr(), dead_addr],
        HedgeConfig {
            // Hedge every query after 1 ms: the reissue always targets
            // the dead replica (only other choice) and always fails
            // long before the ~20 ms primary completes.
            policy: ReissuePolicy::single_d(1.0),
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    for i in 0..10 {
        // pick_primary round-robins, so odd queries have their primary
        // on the dead replica and must be saved the other way around:
        // the primary fails fast and the reissue to the healthy
        // replica wins.
        let r = client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap_or_else(|e| panic!("query {i} failed through a healthy replica: {e}"));
        assert_eq!(r, Reply::Int(34));
    }
    let stats = client.stats();
    assert_eq!(stats.queries, 10);
    assert_eq!(stats.errors, 0, "no query may surface an error: {stats:?}");
    assert!(stats.reissues >= 10, "the 1 ms hedge fires every query");

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = std::net::TcpStream::connect(dead_addr); // unblock accept
    dead_thread.join().unwrap();
}

/// (2) Observed reissue rate stays within the configured budget ±1%.
///
/// Tolerance rationale: with `d = 0` the schedule never waits, so the
/// realized rate is exactly the coin's empirical frequency under the
/// pinned seed (42) — a deterministic quantity; ±1% at 10 000 queries
/// (~2.5 binomial σ) only exists to keep the assertion meaningful if
/// the RNG stream ever changes deliberately.
#[test]
fn reissue_rate_tracks_budget() {
    let servers = [
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
        TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    // Fixed SingleR with d = 0: every query flips the q-coin, so the
    // reissue budget equals q exactly and the observed rate is a
    // deterministic function of the seeded RNG.
    let budget = 0.20;
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::single_r(0.0, budget),
            online: None,
            seed: 42,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    let queries = 10_000u64;
    for _ in 0..queries {
        let r = client
            .execute_blocking(Command::Get("greeting".into()))
            .unwrap();
        assert_eq!(r, Reply::Str("hello".into()));
    }
    let stats = client.stats();
    assert_eq!(stats.queries, queries);
    let rate = stats.reissues as f64 / stats.queries as f64;
    assert!(
        (rate - budget).abs() <= 0.01,
        "observed reissue rate {rate:.4} vs budget {budget} ±1%"
    );
}

/// (2b) Same property with the *online adapter* choosing `(d, q)`
/// live: the adapter's own budget accounting must respect the cap.
///
/// Tolerance rationale: the adapter holds the *expected* rate
/// `q·P(T > d)` at the budget, but the realized rate wobbles with
/// wall-clock timing (which queries are outstanding when a timer
/// fires). +1% on 4 000 queries is ~4 binomial σ around the expected
/// 10% — wide enough that scheduler jitter cannot trip it, tight
/// enough to catch a governor or accounting regression. One-sided
/// because undershoot is not a defect (hedging less than budgeted is
/// always admissible).
#[test]
fn online_adapter_policy_stays_within_budget() {
    let servers = [
        TcpServer::bind(
            "127.0.0.1:0",
            small_store(),
            TcpServerConfig {
                nanos_per_op: 300,
                ..TcpServerConfig::default()
            },
        )
        .unwrap(),
        TcpServer::bind(
            "127.0.0.1:0",
            small_store(),
            TcpServerConfig {
                nanos_per_op: 300,
                ..TcpServerConfig::default()
            },
        )
        .unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let budget = 0.10;
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                k: 0.95,
                budget,
                window: 512,
                reoptimize_every: 128,
                learning_rate: 0.5,
                min_pairs: 32,
                load: None,
            }),
            seed: 7,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    for _ in 0..4_000u64 {
        client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap();
    }
    // The live policy's expected budget never exceeds the cap.
    let policy = client.policy();
    if let ReissuePolicy::SingleR { delay, prob } = policy {
        assert!(delay >= 0.0);
        assert!((0.0..=1.0).contains(&prob));
    } else {
        panic!("adapter should have produced a SingleR policy, got {policy}");
    }
    // And the realized reissue rate stays within budget ±1% (the
    // adapter re-optimizes toward q·P(outstanding at d) = budget).
    let stats = client.stats();
    let rate = stats.reissues as f64 / stats.queries as f64;
    assert!(
        rate <= budget + 0.01,
        "observed reissue rate {rate:.4} vs budget {budget} + 1%"
    );
}

/// (2c) Raced hedges feed censored `(primary, reissue)` pairs to the
/// online adapter, and the adapter switches to the §4.2 correlated
/// optimizer once enough accumulate — end to end through real TCP
/// sockets and tied-request cancellation.
///
/// Assertions here are structural (≥ 1 censored pair, the correlated
/// gate opened, budget accounting holds), never on timing quantities:
/// the seed (11) pins the coin flips, but which side of each race
/// completes first is wall-clock-dependent, so any count beyond "it
/// happened at least once" would be flaky by construction.
#[test]
fn raced_hedges_feed_censored_pairs_to_adapter() {
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
        ..TcpServerConfig::default()
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            // Aggressive fixed hedge until the adapter warms up, so
            // races (and pairs) start from the first queries.
            policy: ReissuePolicy::single_r(5.0, 1.0),
            online: Some(OnlineConfig {
                k: 0.90,
                budget: 0.5,
                window: 16,
                reoptimize_every: 20,
                learning_rate: 0.5,
                min_pairs: 8,
                load: None,
            }),
            budget_cap: Some(1.0), // let every armed hedge fire
            seed: 11,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replica 0 with a monster intersection (~800 ms
    // of service time) so queries whose primary lands there must be won
    // by the reissue, and the retracted loser produces a *censored*
    // pair.
    use std::io::Write as _;
    let mut side = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut frame = bytes::BytesMut::new();
    encode_command(
        &Command::SInterCard("big1".into(), "big2".into()),
        &mut frame,
    );
    side.write_all(&frame).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let it occupy replica 0

    for _ in 0..40 {
        let r = client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap();
        assert_eq!(r, Reply::Int(34));
    }

    // Loser drains resolve asynchronously; poll until pairs appear.
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline {
        let s = client.stats();
        if s.pairs_censored >= 1 && client.online_correlated() == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = client.stats();
    assert!(
        stats.pairs_censored >= 1,
        "retracted losers must produce censored pairs: {stats:?}"
    );
    assert_eq!(
        client.online_correlated(),
        Some(true),
        "adapter should have switched to the correlated optimizer: {stats:?}"
    );
    let record = client.online_policy().expect("online adapter active");
    assert!(record.delay.is_finite() && record.delay >= 0.0);
    assert!(
        record.budget_used <= 0.5 + 1e-9,
        "adapter budget accounting must hold: {record:?}"
    );
}

/// (3) Every RESP command type used by `kvstore::store::Command`
/// round-trips through the TCP transport.
#[test]
fn tcp_transport_roundtrips_every_command_type() {
    let server = TcpServer::bind("127.0.0.1:0", small_store(), TcpServerConfig::default()).unwrap();
    let client = HedgedClient::connect(
        &[server.local_addr()],
        HedgeConfig::default(), // policy None: plain dispatch
    )
    .unwrap();

    let cases: Vec<(Command, Reply)> = vec![
        (Command::Ping, Reply::Pong),
        (Command::Set("k".into(), "v".into()), Reply::Ok),
        (Command::Get("k".into()), Reply::Str("v".into())),
        (Command::Get("missing".into()), Reply::Nil),
        (Command::Del("k".into()), Reply::Int(1)),
        (Command::SAdd("s".into(), vec![3, 1, 2, 3]), Reply::Int(3)),
        (Command::SCard("s".into()), Reply::Int(3)),
        (
            Command::SInter("evens".into(), "threes".into()),
            Reply::Members((0..34u32).map(|i| i * 6).collect()),
        ),
        (
            Command::SInterCard("evens".into(), "threes".into()),
            Reply::Int(34),
        ),
        (Command::Get("s".into()), Reply::Error("WRONGTYPE".into())),
    ];
    for (cmd, want) in cases {
        let got = client.execute_blocking(cmd.clone()).unwrap();
        assert_eq!(got, want, "command {cmd:?}");
    }

    // `Command::Cancel` is transport-internal: it round-trips through
    // the codec (wire format) and executes as a no-op on a bare store,
    // but the client refuses to dispatch it as a request.
    let mut wire = bytes::BytesMut::new();
    encode_command(&Command::Cancel(42), &mut wire);
    assert_eq!(
        decode_command(&mut wire).unwrap(),
        Some(Command::Cancel(42))
    );
    let mut store = KvStore::new();
    assert_eq!(store.execute(&Command::Cancel(42)).0, Reply::Ok);
    assert!(client.execute_blocking(Command::Cancel(42)).is_err());

    // Typed replies also round-trip through the client-side decoder.
    for reply in [
        Reply::Ok,
        Reply::Pong,
        Reply::Str("xyz".into()),
        Reply::Int(-3),
        Reply::Members(vec![1, 2, 3]),
        Reply::Nil,
        Reply::Error("boom".into()),
    ] {
        let mut buf = bytes::BytesMut::new();
        encode_reply(&reply, &mut buf);
        assert_eq!(decode_reply(&mut buf).unwrap(), Some(reply));
        assert!(buf.is_empty());
    }
}
