//! Property tests (vendored proptest shim — deterministic per-test
//! RNG, no shrinking) for MultipleR schedules, at two levels:
//!
//! * **Sampling layer** (`reissue_core::policy`): for random stage
//!   vectors, sampled schedules preserve non-decreasing delays, tag
//!   the right stage indices, and fire each stage's coin at its own
//!   probability.
//! * **Runtime layer** (`hedge::HedgedClient` over real TCP): the
//!   realized per-stage dispatch rates track the coin probabilities
//!   when the governor is slack, the total realized reissue rate
//!   stays under the budget governor's cap when it binds, and the
//!   per-stage counters account every dispatch.

use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig, MAX_STAGES};
use kvstore::{Command, IntSet, KvStore, Reply};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use reissue_core::policy::ReissuePolicy;

/// Builds a valid MultipleR stage vector from raw draws: delays are
/// sorted (the family's non-decreasing constraint), probabilities are
/// clamped into [0, 1] — draws above 1 saturate, exercising the
/// deterministic q = 1 path in ~1 in 6 stages.
fn stages_from_draws(raw: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut delays: Vec<f64> = raw.iter().map(|&(d, _)| d).collect();
    delays.sort_by(f64::total_cmp);
    delays
        .into_iter()
        .zip(raw.iter().map(|&(_, q)| q.min(1.0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Sampled schedules are order-preserving sub-vectors of the stage
    /// list: delays non-decreasing, stage indices strictly increasing
    /// and pointing at the right delay.
    #[test]
    fn sampled_schedules_preserve_stage_order(
        raw in collection::vec((0.0f64..5.0, 0.0f64..1.2), 1..5),
        seed in any::<u64>(),
    ) {
        let stages = stages_from_draws(&raw);
        let policy = ReissuePolicy::multiple_r(stages.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let sched = policy.sample_schedule_indexed(&mut rng);
            for w in sched.windows(2) {
                prop_assert!(w[0].0 < w[1].0, "stage indices must increase");
                prop_assert!(w[0].1 <= w[1].1, "delays must be non-decreasing");
            }
            for &(idx, delay) in &sched {
                prop_assert_eq!(delay, stages[idx].0, "index must tag its own stage");
            }
        }
    }

    /// Each stage fires its own independent coin: empirical rates match
    /// q per stage. Tolerance: 2 000 draws give binomial σ ≤ 0.011, so
    /// 4σ + 0.01 slack never flakes on the pinned per-test RNG but
    /// catches a shared or swapped coin (whose error is O(q)).
    #[test]
    fn sampled_schedules_fire_each_coin_at_its_rate(
        raw in collection::vec((0.0f64..5.0, 0.0f64..1.2), 1..5),
        seed in any::<u64>(),
    ) {
        let stages = stages_from_draws(&raw);
        let policy = ReissuePolicy::multiple_r(stages.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2_000;
        let mut hits = vec![0usize; stages.len()];
        for _ in 0..n {
            for (idx, _) in policy.sample_schedule_indexed(&mut rng) {
                hits[idx] += 1;
            }
        }
        for (idx, &(_, q)) in stages.iter().enumerate() {
            let rate = hits[idx] as f64 / f64::from(n);
            let sigma = (q * (1.0 - q) / f64::from(n)).sqrt();
            prop_assert!(
                (rate - q).abs() <= 4.0 * sigma + 0.01,
                "stage {idx}: rate {rate} vs q {q}"
            );
        }
    }
}

fn props_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..100u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..100u32).map(|i| i * 3).collect()),
    );
    store
}

proptest! {
    // TCP servers per case are expensive; 5 cases × 240 queries keeps
    // the whole property under ~15 s while still varying stage count,
    // delays, probabilities and the cap across runs.
    #![proptest_config(ProptestConfig::with_cases(5))]
    /// End-to-end through the runtime: for a random MultipleR policy,
    /// (a) the per-stage counters account every dispatch, (b) each
    /// stage's realized dispatch rate tracks its coin probability when
    /// the governor is slack, and (c) the total realized reissue rate
    /// stays under the governor's cap (plus its documented burst
    /// allowance) when the schedule demands more than the cap.
    #[test]
    fn runtime_respects_stage_coins_and_governor_cap(
        raw in collection::vec((0.0f64..2.0, 0.05f64..1.2), 1..4),
        cap in 0.1f64..0.45,
        seed in any::<u64>(),
    ) {
        let stages = stages_from_draws(&raw);
        // Service time (~5-10 ms: ~100 probe ops × 50 µs) dwarfs every
        // stage delay (≤ 2 ms), so P(outstanding at dᵢ) ≈ 1 and the
        // expected dispatch rate of stage i is qᵢ itself — which makes
        // the realized rates directly comparable to the coins.
        let cfg = TcpServerConfig { nanos_per_op: 50_000, ..TcpServerConfig::default() };
        let servers: Vec<TcpServer> = (0..3)
            .map(|_| TcpServer::bind("127.0.0.1:0", props_store(), cfg).unwrap())
            .collect();
        let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
        let client = HedgedClient::connect(
            &addrs,
            HedgeConfig {
                policy: ReissuePolicy::multiple_r(stages.clone()),
                budget_cap: Some(cap),
                seed,
                ..HedgeConfig::default()
            },
        )
        .unwrap();

        let queries = 240u64;
        for _ in 0..queries {
            let r = client
                .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
                .unwrap();
            prop_assert_eq!(r, Reply::Int(34));
        }

        let stats = client.stats();
        prop_assert_eq!(stats.queries, queries);
        // (a) Per-stage accounting is exact.
        prop_assert_eq!(
            stats.reissues_by_stage.iter().sum::<u64>(),
            stats.reissues,
            "per-stage counts must sum to the total"
        );
        for bucket in stats.reissues_by_stage[stages.len()..MAX_STAGES].iter() {
            prop_assert_eq!(*bucket, 0u64, "no dispatches beyond the last stage");
        }

        let demand: f64 = stages.iter().map(|&(_, q)| q).sum();
        // The governor's documented burst allowance (see
        // `HedgeConfig::budget_cap`).
        let burst = (cap * 200.0).clamp(2.0, 16.0);
        // (c) The cap (plus burst) always bounds the realized total.
        prop_assert!(
            stats.reissues as f64 <= cap * queries as f64 + burst + 1.0,
            "realized reissues {} exceed cap {cap} × {queries} + burst {burst}",
            stats.reissues
        );
        if demand <= 0.8 * cap {
            // (b) Governor slack: each stage's realized rate matches
            // its coin. Tolerance: 4 binomial σ at 240 queries plus
            // 0.02 slack for the rare query that completes inside a
            // sub-millisecond stage delay.
            for (idx, &(_, q)) in stages.iter().enumerate() {
                let rate = stats.reissues_by_stage[idx] as f64 / queries as f64;
                let sigma = (q * (1.0 - q) / queries as f64).sqrt();
                prop_assert!(
                    (rate - q).abs() <= 4.0 * sigma + 0.02,
                    "stage {idx}: realized {rate} vs coin {q}"
                );
            }
        } else {
            // One-sided even when the governor binds: no stage can
            // dispatch more often than its coin fires.
            for (idx, &(_, q)) in stages.iter().enumerate() {
                let rate = stats.reissues_by_stage[idx] as f64 / queries as f64;
                let sigma = (q * (1.0 - q) / queries as f64).sqrt();
                prop_assert!(
                    rate <= q + 4.0 * sigma + 0.02,
                    "stage {idx}: realized {rate} above coin {q}"
                );
            }
        }
    }
}
