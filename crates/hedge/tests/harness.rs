//! Integration tests for the scale-out harness (`hedge::harness`):
//! a six-replica cluster under open-loop load with scripted mid-run
//! sickness, and the backpressure guarantees of bounded admission.

use hedge::harness::{Arrivals, Cluster, LoadConfig, SicknessEvent};
use hedge::{HedgeConfig, HedgedClient};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::policy::ReissuePolicy;

/// A store whose `SINTERCARD work work2` costs ~4 000 elementary ops:
/// at 500 ns/op that is ~2 ms of service burn per query.
fn work_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set("work", IntSet::from_unsorted((0..4_000u32).collect()));
    store.load_set("work2", IntSet::from_unsorted((2_000..6_000u32).collect()));
    store
}

const WORK_CMD_COST_NANOS_FAST: u64 = 250; // ~1 ms per query
const WORK_CMD_COST_NANOS_SICK: u64 = 5_000; // ~20 ms per query

fn work_cmd(_i: usize) -> Command {
    Command::SInterCard("work".into(), "work2".into())
}

/// Satellite: 6-replica cluster, open-loop Poisson load, two replicas
/// sickened mid-run (and healed later). The hedged run's P99 must beat
/// the unhedged run's, the realized reissue rate must stay within the
/// governor's budget, and accounting must be exact — every arrival is
/// dispatched or dropped, every dispatched query completes or fails,
/// nothing is lost.
#[test]
fn six_replicas_scripted_sickness_hedged_beats_unhedged() {
    let queries = 900;
    // Sicken replicas 0 and 1 from arrival 250 to arrival 500: a
    // third of the cluster serves 20 ms/query instead of 1 ms.
    let script = vec![
        SicknessEvent {
            at_query: 250,
            replica: 0,
            nanos_per_op: WORK_CMD_COST_NANOS_SICK,
        },
        SicknessEvent {
            at_query: 250,
            replica: 1,
            nanos_per_op: WORK_CMD_COST_NANOS_SICK,
        },
        SicknessEvent {
            at_query: 500,
            replica: 0,
            nanos_per_op: WORK_CMD_COST_NANOS_FAST,
        },
        SicknessEvent {
            at_query: 500,
            replica: 1,
            nanos_per_op: WORK_CMD_COST_NANOS_FAST,
        },
    ];
    let load = LoadConfig {
        queries,
        arrivals: Arrivals::Poisson { mean_us: 1_000 },
        max_in_flight: 512,
        seed: 0xD15EA5E,
        script,
        rate_script: Vec::new(),
    };

    let run = |policy: ReissuePolicy, budget_cap: Option<f64>| {
        let cluster = Cluster::spawn(6, &work_store(), WORK_CMD_COST_NANOS_FAST).unwrap();
        let client = HedgedClient::connect(
            &cluster.addrs(),
            HedgeConfig {
                policy,
                budget_cap,
                ..HedgeConfig::default()
            },
        )
        .unwrap();
        let report = cluster.run_load(&client, &load, work_cmd);
        let stats = client.stats();
        (report, stats)
    };

    // ── Unhedged baseline ──────────────────────────────────────────
    let (base, base_stats) = run(ReissuePolicy::None, None);
    assert_eq!(base.dispatched + base.dropped, queries as u64);
    assert_eq!(base.lost(), 0, "unhedged run lost queries: {base:?}");
    assert_eq!(base.failed, 0);
    assert_eq!(base_stats.reissues, 0);
    let p99_unhedged = base.quantile(0.99).unwrap();

    // ── Hedged: reissue stragglers at 4 ms, governed at 40% ────────
    let cap = 0.40;
    let (hedged, stats) = run(ReissuePolicy::single_r(4.0, 1.0), Some(cap));
    assert_eq!(hedged.dispatched + hedged.dropped, queries as u64);
    assert_eq!(hedged.lost(), 0, "hedged run lost queries: {hedged:?}");
    assert_eq!(hedged.failed, 0);
    let p99_hedged = hedged.quantile(0.99).unwrap();

    // A sick-replica victim takes ≥ 20 ms unhedged; a hedge to any of
    // the four healthy replicas answers in a few ms. The margin is an
    // order of magnitude, so comparing the two P99s directly is
    // robust to scheduler noise.
    assert!(
        p99_hedged < p99_unhedged,
        "hedged P99 {p99_hedged:.2} ms must beat unhedged {p99_unhedged:.2} ms"
    );
    assert!(
        p99_unhedged > 15.0,
        "sickness script had no effect on the unhedged tail: {p99_unhedged:.2} ms"
    );

    // Realized reissue rate within the governor's budget (+ its burst
    // allowance of ≤ 16 dispatches, a vanishing fraction here).
    let rate = stats.reissues as f64 / stats.queries.max(1) as f64;
    assert!(
        rate <= cap + 16.0 / queries as f64 + 0.005,
        "realized reissue rate {rate:.3} exceeded the {cap} budget"
    );
    assert!(stats.reissues > 0, "the sick window must trigger hedges");

    // Zero lost/unaccounted queries on the client's books too.
    assert_eq!(stats.queries + stats.errors, hedged.dispatched);
}

/// Satellite: at offered load beyond cluster capacity the generator
/// must report drops (not absorb them), keep in-flight bounded, and
/// the run must drain without deadlock.
#[test]
fn overload_reports_drops_and_stays_bounded() {
    // 3 replicas × ~2 ms/query ≈ 1 500 qps capacity; offer 5 000 qps.
    let cluster = Cluster::spawn(3, &work_store(), 500).unwrap();
    let client = HedgedClient::connect(&cluster.addrs(), HedgeConfig::default()).unwrap();
    let queries = 1_500;
    let cap = 32;
    let report = cluster.run_load(
        &client,
        &LoadConfig {
            queries,
            arrivals: Arrivals::Fixed { interval_us: 200 },
            max_in_flight: cap,
            ..LoadConfig::default()
        },
        work_cmd,
    );

    // Every arrival accounted for: dispatched or dropped, never
    // silently absorbed; every dispatch completed or failed.
    assert_eq!(report.dispatched + report.dropped, queries as u64);
    assert_eq!(report.lost(), 0, "overloaded run lost queries: {report:?}");
    assert!(
        report.dropped > 0,
        "utilization > 1 must surface drops: {report:?}"
    );
    assert!(
        report.drop_rate() > 0.2,
        "at >3x capacity the drop rate should be substantial: {:.3}",
        report.drop_rate()
    );
    // The admission bound really bounds the queue (no unbounded
    // in-flight growth, which is the OOM mode this guards against).
    assert!(
        report.peak_in_flight <= cap,
        "in-flight {} exceeded the {cap} bound",
        report.peak_in_flight
    );
    // The histogram recorder holds completed-query latencies only.
    assert_eq!(report.latency_ms.len(), report.completed);
}

/// Bursty arrivals drive the same accounting invariants (and the
/// burst path of the arrival process) end to end.
#[test]
fn burst_arrivals_account_exactly() {
    let cluster = Cluster::spawn(3, &work_store(), 0).unwrap();
    let client = HedgedClient::connect(&cluster.addrs(), HedgeConfig::default()).unwrap();
    let queries = 400;
    let report = cluster.run_load(
        &client,
        &LoadConfig {
            queries,
            arrivals: Arrivals::Burst {
                size: 20,
                gap_us: 4_000,
            },
            max_in_flight: 64,
            ..LoadConfig::default()
        },
        |i| {
            if i % 2 == 0 {
                Command::Ping
            } else {
                work_cmd(i)
            }
        },
    );
    assert_eq!(report.dispatched + report.dropped, queries as u64);
    assert_eq!(report.lost(), 0);
    assert_eq!(report.failed, 0);
    assert!(report.completed > 0);
    // Sanity on the recorded replies: the cluster really executed
    // the dispatched commands.
    assert!(cluster.total_commands() >= report.completed);
    // Smoke the reply path once directly.
    assert_eq!(client.execute_blocking(Command::Ping).unwrap(), Reply::Pong);
}

/// A scripted arrival-rate ramp must pace AND report per segment:
/// every arrival lands in exactly one segment, segment counters sum
/// to the run totals, each segment reports the process that paced it,
/// and the client-counter deltas tile the client's final totals.
#[test]
fn rate_script_segments_account_exactly() {
    use hedge::harness::RateEvent;

    let cluster = Cluster::spawn(3, &work_store(), WORK_CMD_COST_NANOS_FAST).unwrap();
    let client = HedgedClient::connect(&cluster.addrs(), HedgeConfig::default()).unwrap();
    let queries = 600;
    let slow = Arrivals::Poisson { mean_us: 2_000 };
    let mid = Arrivals::Poisson { mean_us: 1_000 };
    let fast = Arrivals::Poisson { mean_us: 500 };
    let report = cluster.run_load(
        &client,
        &LoadConfig {
            queries,
            arrivals: slow,
            max_in_flight: 256,
            rate_script: vec![
                // Deliberately unsorted: run_load must sort.
                RateEvent {
                    at_query: 400,
                    arrivals: fast,
                },
                RateEvent {
                    at_query: 200,
                    arrivals: mid,
                },
            ],
            ..LoadConfig::default()
        },
        work_cmd,
    );

    assert_eq!(report.lost(), 0);
    assert_eq!(report.segments.len(), 3, "two events => three segments");
    let bounds: Vec<(usize, usize)> = report.segments.iter().map(|s| (s.start, s.end)).collect();
    assert_eq!(bounds, vec![(0, 200), (200, 400), (400, 600)]);
    // Each segment reports the arrival process that paced it.
    let rates: Vec<f64> = report
        .segments
        .iter()
        .map(|s| s.arrivals.rate_qps())
        .collect();
    assert!(rates[0] < rates[1] && rates[1] < rates[2], "{rates:?}");

    // Segment counters tile the run totals exactly.
    let seg_offered: u64 = report
        .segments
        .iter()
        .map(|s| s.dispatched + s.dropped)
        .sum();
    assert_eq!(seg_offered, queries as u64);
    for s in &report.segments {
        assert_eq!(
            s.dispatched + s.dropped,
            (s.end - s.start) as u64,
            "segment [{}, {}) must account for its own arrivals",
            s.start,
            s.end
        );
        // Histograms record the segment's completed queries only.
        assert_eq!(s.latency_ms.len(), s.completed);
        assert!(s.quantile(0.5).is_some());
        // Not utilization-aware: the client reports no estimate.
        assert!(s.utilization_end.is_nan());
        assert!(s.utilization_mean.is_nan());
    }
    let seg_completed: u64 = report.segments.iter().map(|s| s.completed).sum();
    let seg_failed: u64 = report.segments.iter().map(|s| s.failed).sum();
    assert_eq!(seg_completed, report.completed);
    assert_eq!(seg_failed, report.failed);

    // Client-counter deltas tile the client's final totals (snapshots
    // at boundaries, final one after drain).
    let delta_sum: u64 = report.segments.iter().map(|s| s.queries_delta).sum();
    assert_eq!(delta_sum, client.stats().queries);
}
