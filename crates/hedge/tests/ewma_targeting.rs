//! Regression test for per-replica health EWMA reissue targeting:
//! with one replica forced slow, the client's reissue target
//! distribution must shift away from it within a bounded number of
//! requests — and must return once the replica heals. Raw in-flight
//! counts cannot pass this test: the slow replica answers its (few)
//! executing commands and holds no client-visible queue, so by load
//! alone it looks as idle as the healthy ones.

use hedge::{HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::policy::ReissuePolicy;

use std::time::Duration;

/// Service burn while healthy: ~100 probe ops × 8 µs ≈ 1 ms.
const HEALTHY_NANOS_PER_OP: u64 = 8_000;
/// Service burn while sick: ~100 probe ops × 800 µs ≈ 80 ms.
const SICK_NANOS_PER_OP: u64 = 800_000;
const SICK_REPLICA: usize = 2;

fn store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..100u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..100u32).map(|i| i * 3).collect()),
    );
    store
}

fn run_queries(client: &HedgedClient, n: usize) {
    for _ in 0..n {
        let r = client
            .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
            .unwrap();
        assert_eq!(r, Reply::Int(34));
    }
}

/// Reissue-target share of each replica between two count snapshots.
fn target_shares(before: &[u64], after: &[u64]) -> Vec<f64> {
    let total: u64 = after
        .iter()
        .zip(before)
        .map(|(a, b)| a - b)
        .sum::<u64>()
        .max(1);
    after
        .iter()
        .zip(before)
        .map(|(a, b)| (a - b) as f64 / total as f64)
        .collect()
}

#[test]
fn reissue_targets_shift_away_from_sick_replica_and_return() {
    let cfg = TcpServerConfig {
        nanos_per_op: HEALTHY_NANOS_PER_OP,
        ..TcpServerConfig::default()
    };
    let servers: Vec<TcpServer> = (0..3)
        .map(|_| TcpServer::bind("127.0.0.1:0", store(), cfg).unwrap())
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();

    // Hedge every query immediately (SingleD, d = 0): each query
    // dispatches one reissue, so the target counters accumulate one
    // sample per query and the shares below are over exactly N draws.
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::single_d(0.0),
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Warm-up: all replicas healthy, health EWMAs seeded with real
    // samples so the sick phase starts from an honest baseline.
    run_queries(&client, 200);

    // ── Sick phase ─────────────────────────────────────────────────
    servers[SICK_REPLICA].set_nanos_per_op(SICK_NANOS_PER_OP);
    let before_sick = client.reissue_target_counts();
    run_queries(&client, 600);
    let after_sick = client.reissue_target_counts();
    let sick_shares = target_shares(&before_sick, &after_sick);

    // The bound: 600 requests must be enough for the shift. The EWMA
    // needs only a handful of ~80 ms completions (α = 0.1: one sample
    // already lifts the EWMA ~8x above a 1 ms baseline) before every
    // score comparison demotes the sick replica; the ceiling of 0.15
    // allows the pre-detection draws (the sick replica's first slow
    // command has to *complete* before the EWMA can see it) plus
    // stragglers, while the healthy-phase share of a 3-replica set is
    // ~0.33.
    assert!(
        sick_shares[SICK_REPLICA] < 0.15,
        "sick replica still receives {:.1}% of reissues: {sick_shares:?}",
        100.0 * sick_shares[SICK_REPLICA]
    );
    let (lat_sick, _) = client.replica_health(SICK_REPLICA);
    let healthy_max = (0..3)
        .filter(|&i| i != SICK_REPLICA)
        .map(|i| client.replica_health(i).0)
        .fold(0.0f64, f64::max);
    assert!(
        lat_sick > 3.0 * healthy_max,
        "sick replica's latency EWMA {lat_sick:.2} ms must stand out \
         from healthy {healthy_max:.2} ms"
    );

    // ── Heal phase ─────────────────────────────────────────────────
    servers[SICK_REPLICA].set_nanos_per_op(HEALTHY_NANOS_PER_OP);
    // Let the sick replica's in-flight tail (≤ one ~80 ms command per
    // pooled connection) drain before measuring recovery.
    std::thread::sleep(Duration::from_millis(400));
    let before_heal = client.reissue_target_counts();
    run_queries(&client, 900);
    let after_heal = client.reissue_target_counts();
    let heal_shares = target_shares(&before_heal, &after_heal);

    // Recovery path: the healed replica keeps receiving primaries
    // (round-robin is health-blind by design), whose fast completions
    // decay the EWMA back toward the baseline; reissue targeting
    // follows. The floor of 0.12 is far above the ~0 share a
    // never-recovering score would produce, yet comfortably below the
    // ~1/3 steady state, so it tolerates the early healed-phase draws
    // that still avoid the replica.
    assert!(
        heal_shares[SICK_REPLICA] > 0.12,
        "healed replica regains reissue traffic: {heal_shares:?}"
    );
    assert!(
        heal_shares[SICK_REPLICA] > 2.0 * sick_shares[SICK_REPLICA].max(0.01),
        "healed share {:.2} must clearly exceed sick share {:.2}",
        heal_shares[SICK_REPLICA],
        sick_shares[SICK_REPLICA]
    );
    let (lat_healed, _) = client.replica_health(SICK_REPLICA);
    assert!(
        lat_healed < lat_sick / 2.0,
        "latency EWMA must decay after healing: {lat_sick:.2} -> {lat_healed:.2} ms"
    );
}
