//! Integration test for utilization-aware hedging across redundancy's
//! load-dependent sign flip: a scripted arrival-rate ramp (utilization
//! ~0.3 → ~0.95 mid-run) through a real TCP cluster, comparing the
//! load-aware online adapter against an unhedged baseline and a static
//! policy frozen from a mid-load calibration.
//!
//! The assertions are the ISSUE's acceptance shape with tolerances
//! sized for CI-scale runs (tail quantiles of a few hundred samples
//! are noisy; the committed full-scale `BENCH_ramp.json` carries the
//! tight numbers):
//!
//! * the aware policy's P99 is never *meaningfully* worse than
//!   unhedged at any plateau;
//! * the aware realized reissue rate falls as estimated utilization
//!   rises (low plateau vs saturated plateau — the monotone shape,
//!   within tolerance);
//! * the segment-mean utilization estimate itself increases along the
//!   ramp;
//! * at the saturated plateau the aware run sheds no more load than
//!   unhedged.
//!
//! `HEDGE_TCP_QUERIES=<n>` scales the per-plateau arrival count (CI
//! smoke uses a few hundred).

use hedge::harness::{Arrivals, Cluster, LoadConfig, LoadReport, RateEvent};
use hedge::{HedgeConfig, HedgedClient};
use kvstore::{Command, IntSet, KvStore};
use reissue_core::load::LoadShaper;
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;
use std::sync::Mutex;

/// Both tests pace real-time load through real TCP clusters; run
/// concurrently they steal CPU from each other's saturated plateau and
/// the tail quantiles measure the interference, not the policies.
static SERIAL: Mutex<()> = Mutex::new(());

/// `SINTERCARD work work2` costs ~3 800 elementary ops under the
/// probe model (|small| × log₂|large| probes + one per hit); at
/// 250 ns/op that is ~1 ms of service burn per query. The
/// `slow`/`slow2` pair costs ~37 500 ops (~9.4 ms) — the rare
/// straggler command the hedgers race.
fn work_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set("work", IntSet::from_unsorted((0..400u32).collect()));
    store.load_set("work2", IntSet::from_unsorted((200..600u32).collect()));
    store.load_set("slow", IntSet::from_unsorted((0..3_000u32).collect()));
    store.load_set("slow2", IntSet::from_unsorted((1_500..4_500u32).collect()));
    store
}

const WORK_CMD_COST_NANOS: u64 = 250; // ~1 ms per query
const SERVICE_MS: f64 = 1.0;
const REPLICAS: usize = 3;
/// One in this many queries is the slow outlier (~10× the mean): the
/// tail the hedgers are racing. Without it a ramp of deterministic
/// 1 ms queries has no stragglers to rescue at low load.
const SLOW_EVERY: usize = 150;

fn work_cmd(i: usize) -> Command {
    if i % SLOW_EVERY == SLOW_EVERY / 2 {
        // ~9.4 ms of work: a straggler, but far from a monster that
        // would head-of-line-block a CI-scale phase.
        Command::SInterCard("slow".into(), "slow2".into())
    } else {
        Command::SInterCard("work".into(), "work2".into())
    }
}

/// Poisson arrivals targeting the given utilization. The slow-outlier
/// mass adds ~6% to the mean service time — folded into [`SERVICE_MS`]
/// being a slightly round-up of the ~0.95 ms bulk cost; the
/// utilization targets only need to be roughly right.
fn arrivals_at(util: f64) -> Arrivals {
    Arrivals::Poisson {
        mean_us: ((SERVICE_MS * 1e3) / (REPLICAS as f64 * util)).max(1.0) as u64,
    }
}

fn queries_per_phase() -> usize {
    std::env::var("HEDGE_TCP_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_200)
}

const UTILS: [f64; 3] = [0.3, 0.6, 0.95];

fn ramp_config(q: usize) -> LoadConfig {
    LoadConfig {
        queries: q * UTILS.len(),
        arrivals: arrivals_at(UTILS[0]),
        max_in_flight: 512,
        seed: 0x10_AD11,
        script: Vec::new(),
        rate_script: UTILS
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &util)| RateEvent {
                at_query: i * q,
                arrivals: arrivals_at(util),
            })
            .collect(),
    }
}

fn run_ramp(cfg: HedgeConfig, q: usize) -> (LoadReport, HedgedClient) {
    let cluster = Cluster::spawn(REPLICAS, &work_store(), WORK_CMD_COST_NANOS).unwrap();
    let client = HedgedClient::connect(&cluster.addrs(), cfg).unwrap();
    let report = cluster.run_load(&client, &ramp_config(q), work_cmd);
    (report, client)
}

fn online(budget: f64, load: Option<LoadShaper>) -> OnlineConfig {
    OnlineConfig {
        k: 0.99,
        budget,
        window: 1_000,
        reoptimize_every: 200,
        learning_rate: 0.5,
        min_pairs: 32,
        load,
    }
}

#[test]
fn utilization_aware_hedging_survives_the_sign_flip() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let q = queries_per_phase();
    let budget = 0.08;

    let (unhedged, _) = run_ramp(
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            ..HedgeConfig::default()
        },
        q,
    );
    let (aware, aware_client) = run_ramp(
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online(budget, Some(LoadShaper::default()))),
            ..HedgeConfig::default()
        },
        q,
    );

    assert_eq!(unhedged.lost(), 0);
    assert_eq!(aware.lost(), 0);
    assert_eq!(aware.segments.len(), UTILS.len());

    // The client really was utilization-aware end to end.
    let rho_now = aware_client.utilization().expect("load signal active");
    assert!((0.0..=1.0).contains(&rho_now));
    let snap = aware_client.load_snapshot().expect("load snapshot");
    assert!(snap.completions > 0 && snap.dispatches >= snap.completions);

    // The segment-mean utilization estimate must rise along the ramp.
    let rhos: Vec<f64> = aware.segments.iter().map(|s| s.utilization_mean).collect();
    assert!(
        rhos.iter().all(|r| r.is_finite()),
        "aware run must report ρ̂ per segment: {rhos:?}"
    );
    assert!(
        rhos[2] > rhos[0] + 0.1,
        "ρ̂ must rise across the ramp: {rhos:?}"
    );

    // Realized reissue rate falls as ρ̂ rises: the saturated plateau
    // spends well under half of the low plateau's rate (the monotone
    // shape, with CI-noise tolerance on the middle plateau).
    let rates: Vec<f64> = aware.segments.iter().map(|s| s.reissue_rate()).collect();
    assert!(
        rates[0] > 0.005,
        "with cluster slack the aware policy must actually hedge: {rates:?}"
    );
    assert!(
        rates[2] < 0.5 * rates[0],
        "toward saturation the aware policy must damp hard: {rates:?}"
    );
    assert!(
        rates[2] < rates[1] + 0.02,
        "rate must not rise into saturation: {rates:?}"
    );

    // P99 per plateau: never meaningfully worse than unhedged (50%
    // headroom — CI-scale quantiles of a bimodal tail are noisy), and
    // at the low plateau the hedging must pay for itself against the
    // slow-outlier tail.
    for (k, util) in UTILS.iter().enumerate() {
        let (pu, pa) = (
            unhedged.segments[k].quantile(0.99).unwrap(),
            aware.segments[k].quantile(0.99).unwrap(),
        );
        assert!(
            pa <= pu * 1.5 + 2.0,
            "aware P99 {pa:.2} ms vs unhedged {pu:.2} ms at util {util} — \
             aware must never be meaningfully worse"
        );
    }

    // At the saturated plateau the aware run must not shed more load
    // than the unhedged baseline (the whole point of damping).
    assert!(
        aware.segments[2].drop_rate() <= unhedged.segments[2].drop_rate() + 1e-9,
        "aware drop {} > unhedged drop {}",
        aware.segments[2].drop_rate(),
        unhedged.segments[2].drop_rate()
    );
}

/// A static SingleR policy calibrated by a load-blind adapter at the
/// middle plateau, replayed over the same ramp: the aware policy must
/// beat it at both ends of the ramp (within tolerance) — the
/// fixed-policy failure the online+load path exists to avoid.
#[test]
fn aware_beats_mid_calibrated_static_at_both_ends() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let q = queries_per_phase();
    let budget = 0.08;

    // Calibrate at the middle plateau only (no ramp).
    let cluster = Cluster::spawn(REPLICAS, &work_store(), WORK_CMD_COST_NANOS).unwrap();
    let calib = HedgedClient::connect(
        &cluster.addrs(),
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online(budget, None)),
            ..HedgeConfig::default()
        },
    )
    .unwrap();
    let _ = cluster.run_load(
        &calib,
        &LoadConfig {
            queries: q,
            arrivals: arrivals_at(UTILS[1]),
            max_in_flight: 512,
            seed: 0x10_AD12,
            script: Vec::new(),
            rate_script: Vec::new(),
        },
        work_cmd,
    );
    let record = calib.online_policy().expect("calibration adapter");
    drop(cluster);
    let static_policy =
        ReissuePolicy::single_r(record.delay.max(0.1), record.probability.clamp(0.001, 1.0));

    let (static_run, _) = run_ramp(
        HedgeConfig {
            policy: static_policy,
            online: None,
            budget_cap: Some(1.25 * budget),
            ..HedgeConfig::default()
        },
        q,
    );
    let (aware, _) = run_ramp(
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(online(budget, Some(LoadShaper::default()))),
            ..HedgeConfig::default()
        },
        q,
    );

    let ends = [0, UTILS.len() - 1];
    for k in ends {
        let (ps, pa) = (
            static_run.segments[k].quantile(0.99).unwrap(),
            aware.segments[k].quantile(0.99).unwrap(),
        );
        assert!(
            pa <= ps * 1.5 + 2.0,
            "aware P99 {pa:.2} ms vs static {ps:.2} ms at util {} — \
             the frozen mid-load policy must not beat load-aware adaptation at the ends",
            UTILS[k]
        );
    }
}
