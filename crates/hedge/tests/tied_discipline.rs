//! CI-scale integration tests for the server-side scheduling matrix:
//! tied-request (dequeue-time) cancellation through the full
//! `HedgedClient` path, and the non-FIFO-beats-FIFO discipline shape
//! under queries of death — the same acceptance shape the committed
//! `BENCH_discipline.json` shows at full scale.

use hedge::{CancellationStyle, Discipline, HedgeConfig, HedgedClient, TcpServer, TcpServerConfig};
use kvstore::{Command, IntSet, KvStore, Reply};
use reissue_core::policy::ReissuePolicy;

use std::time::{Duration, Instant};

/// A store with a mid-size monster pair: `SINTERCARD big1 big2` probes
/// 8k elements at ~13 ops each (~110k cost units), so at `nanos_per_op`
/// in the thousands it head-of-line blocks a replica for ~200 ms —
/// long enough to hedge against, short enough for CI.
fn monster_store() -> KvStore {
    let mut store = KvStore::new();
    store.load_set("big1", IntSet::from_unsorted((0..8_000u32).collect()));
    store.load_set("big2", IntSet::from_unsorted((4_000..12_000u32).collect()));
    store.load_set(
        "evens",
        IntSet::from_unsorted((0..100u32).map(|i| i * 2).collect()),
    );
    store.load_set(
        "threes",
        IntSet::from_unsorted((0..100u32).map(|i| i * 3).collect()),
    );
    store
}

/// Drives one blocked-primary hedge race in the given cancellation
/// style and returns `(client, servers)` for counter inspection. The
/// primary replica is head-of-line blocked by a monster, the 2 ms
/// always-hedge fires to the idle replica and wins, and the blocked
/// copy must be retracted.
fn run_blocked_race(style: CancellationStyle) -> (HedgedClient, [TcpServer<KvStore>; 2]) {
    let cfg = TcpServerConfig {
        nanos_per_op: 2_000,
        ..TcpServerConfig::default()
    };
    let servers = [
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
        TcpServer::bind("127.0.0.1:0", monster_store(), cfg).unwrap(),
    ];
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let client = HedgedClient::connect(
        &addrs,
        HedgeConfig {
            policy: ReissuePolicy::single_d(2.0),
            online: None,
            cancellation: style,
            ..HedgeConfig::default()
        },
    )
    .unwrap();

    // Head-of-line-block replica 0 (~110k cost × 2 µs ≈ 220 ms) with a
    // raw side connection, then run a few hedged queries whose
    // primaries land there round-robin.
    use std::io::Write as _;
    let mut side = std::net::TcpStream::connect(addrs[0]).unwrap();
    let mut frame = bytes::BytesMut::new();
    kvstore::resp::encode_command(
        &Command::SInterCard("big1".into(), "big2".into()),
        &mut frame,
    );
    side.write_all(&frame).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let reply = client
        .execute_blocking(Command::SInterCard("evens".into(), "threes".into()))
        .unwrap();
    assert_eq!(reply, Reply::Int(34), "the idle replica answers correctly");
    (client, servers)
}

/// Tied mode end to end: the reissue's serving replica retracts the
/// blocked primary server-to-server at dequeue time — the servers'
/// tie counters show the registration, the peer CANCEL, and the
/// retraction, and the client observes the `-ERR cancelled` marker as
/// an in-time cancellation without ever sending its own CANCEL.
#[test]
fn tied_mode_retracts_blocked_primary_server_side() {
    let (client, servers) = run_blocked_race(CancellationStyle::Tied);

    // Retraction confirmations arrive asynchronously; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(2);
    while client.stats().cancelled_in_time == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = client.stats();
    assert!(stats.reissues >= 1, "the 2 ms hedge must fire: {stats:?}");
    assert!(
        stats.cancelled_in_time >= 1,
        "the blocked primary must be retracted in time: {stats:?}"
    );

    let tie0 = servers[0].tie_stats();
    let tie1 = servers[1].tie_stats();
    assert!(
        tie0.registered + tie1.registered >= 2,
        "both tied copies must register: {tie0:?} / {tie1:?}"
    );
    assert!(
        tie0.peer_cancels_sent + tie1.peer_cancels_sent >= 1,
        "the winning replica must CANCEL the peer at dequeue time: {tie0:?} / {tie1:?}"
    );
    assert!(
        tie0.retractions + tie1.retractions >= 1,
        "the peer CANCEL must land before the blocked copy executes: {tie0:?} / {tie1:?}"
    );
    // The blocked replica ran the monster and nothing else.
    assert_eq!(
        servers[0].stats().commands,
        1,
        "retracted work must not run"
    );
}

/// The cancellation A/B shape at CI scale: in client-driven mode the
/// same race never touches the server tie tables (retraction rides
/// the client's CANCEL instead), so the server-side retraction counter
/// separates the styles even when both retract the loser in time.
#[test]
fn client_mode_never_registers_server_side_ties() {
    let (client, servers) = run_blocked_race(CancellationStyle::Client);

    let deadline = Instant::now() + Duration::from_secs(2);
    while client.stats().cancelled_in_time == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        client.stats().cancelled_in_time >= 1,
        "client CANCEL still retracts the blocked copy: {:?}",
        client.stats()
    );
    for (i, s) in servers.iter().enumerate() {
        let ties = s.tie_stats();
        assert_eq!(
            ties.registered, 0,
            "client-driven mode must not register ties on replica {i}: {ties:?}"
        );
        assert_eq!(ties.peer_cancels_sent, 0, "no peer CANCELs on replica {i}");
    }
}

/// Runs a burst against one replica under `discipline`: two monsters
/// first (on their own client, so their connections never carry cheap
/// traffic — admission is FIFO *within* a connection, and the point
/// under test is the cross-connection discipline), then a wave of
/// cheap intersections on a second client's pool. Returns the cheap
/// queries' worst-case latency, ms.
fn cheap_tail_under(discipline: Discipline) -> f64 {
    let server = TcpServer::bind(
        "127.0.0.1:0",
        monster_store(),
        TcpServerConfig {
            nanos_per_op: 2_000,
            discipline,
        },
    )
    .unwrap();
    let plain = HedgeConfig {
        policy: ReissuePolicy::None,
        online: None,
        ..HedgeConfig::default()
    };
    let monster_client = HedgedClient::connect(
        &[server.local_addr()],
        HedgeConfig {
            pool_per_replica: 2,
            ..plain.clone()
        },
    )
    .unwrap();
    let cheap_client = HedgedClient::connect(
        &[server.local_addr()],
        HedgeConfig {
            pool_per_replica: 8,
            ..plain
        },
    )
    .unwrap();
    let rt = monster_client.runtime().clone();

    // Two monsters (~220 ms burn each) go first: by the time the cheap
    // wave lands, the first is executing and the second sits *queued*
    // — the copy a non-FIFO discipline may overtake.
    let monsters: Vec<_> = (0..2)
        .map(|_| {
            rt.spawn(monster_client.execute(Command::SInterCard("big1".into(), "big2".into())))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(25));
    let t0 = Instant::now();
    let cheap: Vec<_> = (0..16)
        .map(|_| {
            let fut = cheap_client.execute(Command::SInterCard("evens".into(), "threes".into()));
            rt.spawn(async move {
                let reply = fut.await.unwrap();
                assert_eq!(reply, Reply::Int(34));
                t0.elapsed().as_secs_f64() * 1e3
            })
        })
        .collect();
    let worst = cheap
        .into_iter()
        .map(|h| rt.block_on(h))
        .fold(0.0f64, f64::max);
    for m in monsters {
        let _ = rt.block_on(m);
    }
    server.shutdown();
    worst
}

/// The discipline A/B shape at CI scale: under head-of-line-blocking
/// monsters, shortest-job-first (`CostPriority`) must serve the cheap
/// traffic ahead of the *queued* monster, beating FIFO's cheap-query
/// tail. FIFO drains both monsters (~2 × 220 ms of service) before the
/// later-admitted cheap wave, while shortest-job-first waits out only
/// the monster already executing.
#[test]
fn cost_priority_beats_fifo_tail_under_monsters() {
    let fifo = cheap_tail_under(Discipline::Fifo);
    let sjf = cheap_tail_under(Discipline::CostPriority);
    assert!(
        sjf < fifo,
        "shortest-job-first must beat FIFO's cheap-query tail under \
         queued monsters: sjf {sjf:.1} ms >= fifo {fifo:.1} ms"
    );
    // The shape, not just the ordering: SJF's tail should be roughly
    // one monster burn, FIFO's roughly two. Assert a real separation
    // (25%) rather than a noise-level win.
    assert!(
        sjf < 0.75 * fifo,
        "expected a decisive SJF win: sjf {sjf:.1} ms vs fifo {fifo:.1} ms"
    );
}
