//! Glue between workload specs and the paper's optimizers.

use crate::spec::WorkloadSpec;
use reissue_core::adaptive::{adapt, AdaptiveConfig, AdaptiveResult, RunSample, System};
use reissue_core::optimizer::{compute_optimal_single_r_correlated, OptimalSingleR};
use reissue_core::ReissuePolicy;
use simulator::RunConfig;

/// Adapts a [`WorkloadSpec`] to the adaptive optimizer's
/// [`System`] interface.
///
/// By default trials are *paired*: every trial reuses the same seed, so
/// the arrival and service draws are common random numbers and the only
/// thing that changes between trials is the policy (and the load it
/// induces). This is the standard DES variance-reduction technique and
/// matters enormously under Pareto(1.1) service times, whose
/// single-run P95 estimates are noisy. [`SimSystem::fresh_seeds`]
/// switches to a new seed per trial, mimicking repeated physical runs.
pub struct SimSystem<'a> {
    spec: &'a WorkloadSpec,
    run: RunConfig,
    trial: u64,
    paired: bool,
}

impl<'a> SimSystem<'a> {
    /// Wraps a spec with a per-trial run configuration (paired seeds).
    pub fn new(spec: &'a WorkloadSpec, run: RunConfig) -> Self {
        SimSystem {
            spec,
            run,
            trial: 0,
            paired: true,
        }
    }

    /// Uses a distinct seed per trial instead of common random numbers.
    pub fn fresh_seeds(mut self) -> Self {
        self.paired = false;
        self
    }

    /// Number of trials executed so far.
    pub fn trials_run(&self) -> u64 {
        self.trial
    }
}

impl System for SimSystem<'_> {
    fn run(&mut self, policy: &ReissuePolicy) -> RunSample {
        let seed = if self.paired {
            self.run.seed
        } else {
            self.run
                .seed
                .wrapping_add(self.trial.wrapping_mul(1_000_003))
        };
        let cfg = RunConfig { seed, ..self.run };
        self.trial += 1;
        self.spec.run(&cfg, policy).to_run_sample()
    }
}

/// Runs the §4.3 adaptive optimizer against a workload: probe with
/// `SingleR(0, B)`, re-optimize from observations, move the delay by
/// the learning rate, repeat.
///
/// Returns the adaptive trace (policies, predicted and observed tail
/// latencies per trial) and the final policy.
pub fn adapt_policy(
    spec: &WorkloadSpec,
    run: &RunConfig,
    k: f64,
    budget: f64,
    learning_rate: f64,
    max_trials: usize,
) -> AdaptiveResult {
    let mut system = SimSystem::new(spec, *run);
    adapt(
        &mut system,
        &AdaptiveConfig {
            k,
            budget,
            learning_rate,
            max_trials,
            tolerance: 0.05,
        },
    )
}

/// Computes the optimal SingleR policy for a *static* workload
/// (Independent/Correlated: no queueing feedback) by sampling joint
/// service-time pairs from the model and running the correlation-aware
/// `ComputeOptimalSingleR` once — the §4.1/§4.2 path, no adaptation
/// needed.
pub fn optimal_policy_static(
    spec: &WorkloadSpec,
    samples: usize,
    k: f64,
    budget: f64,
    seed: u64,
) -> OptimalSingleR {
    let pairs = spec.sample_pairs(samples, seed);
    let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    compute_optimal_single_r_correlated(&rx, &pairs, k, budget)
}

/// The SingleD policy with budget `B` for a static workload: reissue at
/// the empirical `(1 − B)`-quantile of the primary response times
/// (Equation 2).
pub fn single_d_static(
    spec: &WorkloadSpec,
    samples: usize,
    budget: f64,
    seed: u64,
) -> ReissuePolicy {
    let mut xs = spec.sample_primaries(samples, seed);
    xs.sort_by(f64::total_cmp);
    let q = reissue_core::metrics::quantile(&xs, (1.0 - budget).clamp(0.0, 1.0));
    ReissuePolicy::single_d(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{correlated, independent, queueing};

    #[test]
    fn sim_system_paired_seeds_repeat_realizations() {
        let spec = queueing(0.3, 0.0, 1);
        let mut sys = SimSystem::new(&spec, RunConfig::new(2_000));
        let a = sys.run(&ReissuePolicy::None);
        let b = sys.run(&ReissuePolicy::None);
        assert_eq!(sys.trials_run(), 2);
        // Paired (common random numbers): identical realizations.
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn sim_system_fresh_seeds_differ() {
        let spec = queueing(0.3, 0.0, 1);
        let mut sys = SimSystem::new(&spec, RunConfig::new(2_000)).fresh_seeds();
        let a = sys.run(&ReissuePolicy::None);
        let b = sys.run(&ReissuePolicy::None);
        assert_ne!(a.latency, b.latency);
    }

    #[test]
    fn static_optimizer_respects_budget() {
        let spec = independent(2);
        for budget in [0.02, 0.1, 0.3] {
            let opt = optimal_policy_static(&spec, 20_000, 0.95, budget, 7);
            assert!(opt.budget_used <= budget + 1e-9);
        }
    }

    #[test]
    fn static_optimizer_correlation_shifts_delay_earlier() {
        let ind = optimal_policy_static(&independent(3), 30_000, 0.95, 0.1, 9);
        let cor = optimal_policy_static(&correlated(0.9, 3), 30_000, 0.95, 0.1, 9);
        assert!(
            cor.outstanding_at_delay >= ind.outstanding_at_delay,
            "correlated should reissue earlier: cor={} ind={}",
            cor.outstanding_at_delay,
            ind.outstanding_at_delay
        );
    }

    #[test]
    fn single_d_budget_matches() {
        let spec = independent(4);
        let p = single_d_static(&spec, 20_000, 0.1, 11);
        match p {
            ReissuePolicy::SingleD { delay } => {
                // Pr(X > d) should be ≈ 0.1 under the model.
                let xs = spec.sample_primaries(20_000, 12);
                let above = xs.iter().filter(|&&x| x > delay).count() as f64 / xs.len() as f64;
                assert!((above - 0.1).abs() < 0.02, "above={above}");
            }
            _ => panic!("expected SingleD"),
        }
    }

    #[test]
    fn adaptive_on_queueing_improves_tail() {
        let spec = queueing(0.3, 0.5, 5);
        let run = RunConfig::new(15_000);
        let result = adapt_policy(&spec, &run, 0.95, 0.2, 0.5, 5);
        let base = spec.run(&run, &ReissuePolicy::None);
        let tuned = spec.run(&run, &result.policy);
        assert!(
            tuned.quantile(0.95) < base.quantile(0.95),
            "tuned {} !< base {}",
            tuned.quantile(0.95),
            base.quantile(0.95)
        );
        // Budget approximately respected in execution.
        assert!(
            tuned.reissue_rate() <= 0.25,
            "rate={}",
            tuned.reissue_rate()
        );
    }
}
