//! Workload specifications: a serializable recipe for a simulation.

use distributions::rng::stream;
use distributions::{Dist, Exponential, LogNormal, Pareto, Sample};
use reissue_core::ReissuePolicy;
use simulator::{
    simulate, ArrivalProcess, ClusterConfig, CorrelatedService, IidService, RunConfig,
    ServiceModel, SimResult, TraceService,
};

/// An analytic service-time distribution choice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DistSpec {
    /// Pareto with shape and mode.
    Pareto {
        /// Shape α.
        shape: f64,
        /// Mode (minimum value).
        mode: f64,
    },
    /// Log-normal with log-mean and log-sigma.
    LogNormal {
        /// Log-scale mean µ.
        mu: f64,
        /// Log-scale standard deviation σ.
        sigma: f64,
    },
    /// Exponential with rate.
    Exponential {
        /// Rate λ.
        rate: f64,
    },
}

impl DistSpec {
    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        match *self {
            DistSpec::Pareto { shape, mode } => Pareto::new(shape, mode).mean(),
            DistSpec::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).mean(),
            DistSpec::Exponential { rate } => Exponential::new(rate).mean(),
        }
    }

    fn sample(&self, rng: &mut rand::rngs::SmallRng) -> f64 {
        match *self {
            DistSpec::Pareto { shape, mode } => Pareto::new(shape, mode).sample(rng),
            DistSpec::LogNormal { mu, sigma } => LogNormal::new(mu, sigma).sample(rng),
            DistSpec::Exponential { rate } => Exponential::new(rate).sample(rng),
        }
    }
}

/// How a workload generates service times.
#[derive(Clone, Debug)]
pub enum ServiceSpec {
    /// Primary and reissue iid from one distribution.
    Iid(DistSpec),
    /// Correlated: `Y = r·x + Z`.
    Correlated {
        /// Base distribution of `X` and `Z`.
        dist: DistSpec,
        /// Linear correlation ratio.
        r: f64,
    },
    /// Trace-driven (measured engine costs, ms).
    Trace {
        /// Per-query costs in milliseconds.
        costs_ms: Vec<f64>,
        /// Relative reissue-cost jitter.
        jitter: f64,
    },
}

impl ServiceSpec {
    /// Mean primary service time.
    pub fn mean(&self) -> f64 {
        match self {
            ServiceSpec::Iid(d) => d.mean(),
            ServiceSpec::Correlated { dist, .. } => dist.mean(),
            ServiceSpec::Trace { costs_ms, .. } => {
                costs_ms.iter().sum::<f64>() / costs_ms.len() as f64
            }
        }
    }

    /// Builds a fresh mutable service model for one run.
    pub fn make_model(&self) -> Box<dyn ServiceModel> {
        match self {
            ServiceSpec::Iid(d) => match *d {
                DistSpec::Pareto { shape, mode } => {
                    Box::new(IidService::new(Pareto::new(shape, mode)))
                }
                DistSpec::LogNormal { mu, sigma } => {
                    Box::new(IidService::new(LogNormal::new(mu, sigma)))
                }
                DistSpec::Exponential { rate } => Box::new(IidService::new(Exponential::new(rate))),
            },
            ServiceSpec::Correlated { dist, r } => match *dist {
                DistSpec::Pareto { shape, mode } => {
                    Box::new(CorrelatedService::new(Pareto::new(shape, mode), *r))
                }
                DistSpec::LogNormal { mu, sigma } => {
                    Box::new(CorrelatedService::new(LogNormal::new(mu, sigma), *r))
                }
                DistSpec::Exponential { rate } => {
                    Box::new(CorrelatedService::new(Exponential::new(rate), *r))
                }
            },
            ServiceSpec::Trace { costs_ms, jitter } => {
                Box::new(TraceService::new(costs_ms.clone(), *jitter))
            }
        }
    }
}

/// A complete, reusable description of a workload: cluster topology,
/// service model and load level. Running it under different policies
/// (or seeds) is how every figure's series is produced.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Human-readable name for logs and CSV output.
    pub name: String,
    /// Cluster topology and scheduling.
    pub cluster: ClusterConfig,
    /// Service-time model.
    pub service: ServiceSpec,
    /// Target utilization; `None` for infinite-server workloads.
    pub utilization: Option<f64>,
    /// Base seed mixed into each run's seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The arrival process implied by the target utilization.
    pub fn arrival(&self) -> ArrivalProcess {
        match self.utilization {
            Some(u) => ArrivalProcess::poisson_for_utilization(
                u,
                self.cluster.servers,
                self.service.mean(),
            ),
            // Infinite servers: rate only sets event spacing, any value
            // works. Keep it near 1/mean so virtual times stay sane.
            None => ArrivalProcess::Poisson {
                rate: 1.0 / self.service.mean().max(1e-9),
            },
        }
    }

    /// Runs the workload under `policy`.
    ///
    /// The run's `arrival` field is overridden by the spec; its seed is
    /// mixed with the spec's so distinct specs decorrelate.
    pub fn run(&self, run: &RunConfig, policy: &ReissuePolicy) -> SimResult {
        let mut model = self.service.make_model();
        let cfg = RunConfig {
            arrival: self.arrival(),
            seed: run.seed ^ self.seed.rotate_left(32).wrapping_mul(0x9E3779B97F4A7C15),
            ..*run
        };
        simulate(&self.cluster, &cfg, &mut *model, policy)
    }

    /// Draws joint `(x, y)` service-time pairs directly from the
    /// service model — the response-time distribution of the
    /// *no-queueing* workloads, used to feed the optimizer without a
    /// simulation run (§4.1/§4.2 inputs for Independent/Correlated).
    pub fn sample_pairs(&self, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut model = self.service.make_model();
        let mut rng = stream(self.seed ^ seed, 0x9A1F);
        (0..n)
            .map(|i| {
                let x = model.primary(i, &mut rng);
                let y = model.reissue(i, x, &mut rng);
                (x, y)
            })
            .collect()
    }

    /// Samples `(x, y)` via [`ServiceSpec`] distributions only; panics
    /// for trace workloads if the index range is empty. Convenience for
    /// analytic sanity checks.
    pub fn sample_primaries(&self, n: usize, seed: u64) -> Vec<f64> {
        self.sample_pairs(n, seed)
            .into_iter()
            .map(|p| p.0)
            .collect()
    }

    /// Direct access to the underlying distribution sampler for
    /// analytic workloads (used by tests).
    pub fn dist_sample(&self, rng: &mut rand::rngs::SmallRng) -> Option<f64> {
        match &self.service {
            ServiceSpec::Iid(d) | ServiceSpec::Correlated { dist: d, .. } => Some(d.sample(rng)),
            ServiceSpec::Trace { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use simulator::Balancer;

    #[test]
    fn dist_spec_means() {
        assert!(
            (DistSpec::Pareto {
                shape: 1.1,
                mode: 2.0
            }
            .mean()
                - 22.0)
                .abs()
                < 1e-9
        );
        assert!((DistSpec::Exponential { rate: 0.1 }.mean() - 10.0).abs() < 1e-12);
        let ln = DistSpec::LogNormal {
            mu: 1.0,
            sigma: 1.0,
        };
        assert!((ln.mean() - (1.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn arrival_rate_scales_with_utilization() {
        let mk = |u| WorkloadSpec {
            name: "t".into(),
            cluster: ClusterConfig {
                servers: 10,
                balancer: Balancer::Random,
                ..ClusterConfig::default()
            },
            service: ServiceSpec::Iid(DistSpec::Exponential { rate: 0.5 }),
            utilization: Some(u),
            seed: 0,
        };
        let (a_lo, a_hi) = (mk(0.2).arrival(), mk(0.4).arrival());
        match (a_lo, a_hi) {
            (ArrivalProcess::Poisson { rate: lo }, ArrivalProcess::Poisson { rate: hi }) => {
                assert!((hi / lo - 2.0).abs() < 1e-9);
            }
            _ => panic!("expected Poisson"),
        }
    }

    #[test]
    fn sample_pairs_trace_replays() {
        let spec = WorkloadSpec {
            name: "trace".into(),
            cluster: ClusterConfig::default(),
            service: ServiceSpec::Trace {
                costs_ms: vec![5.0, 7.0],
                jitter: 0.0,
            },
            utilization: Some(0.3),
            seed: 1,
        };
        let pairs = spec.sample_pairs(4, 0);
        assert_eq!(pairs, vec![(5.0, 5.0), (7.0, 7.0), (5.0, 5.0), (7.0, 7.0)]);
    }

    #[test]
    fn dist_sample_none_for_trace() {
        let spec = WorkloadSpec {
            name: "trace".into(),
            cluster: ClusterConfig::default(),
            service: ServiceSpec::Trace {
                costs_ms: vec![1.0],
                jitter: 0.0,
            },
            utilization: Some(0.3),
            seed: 1,
        };
        let mut rng = seeded(1);
        assert!(spec.dist_sample(&mut rng).is_none());
    }
}
