//! The paper's named workloads, wired to the simulator and engines.
//!
//! *Optimal Reissue Policies for Reducing Tail Latency* evaluates on
//! five workloads; each has a constructor here returning a
//! [`WorkloadSpec`] that can be run under any policy:
//!
//! | Paper workload | Constructor | Substrate |
//! |---|---|---|
//! | Independent (§5.1) | [`independent`] | infinite servers, iid Pareto(1.1, 2) |
//! | Correlated (§5.1)  | [`correlated`]  | infinite servers, `Y = r·x + Z` |
//! | Queueing (§5.1)    | [`queueing`]    | 10 × FIFO, Poisson, 30 % util default |
//! | Redis set-intersection (§6.2) | [`redis_cluster`] | measured `kvstore` trace, round-robin connections |
//! | Lucene search (§6.3) | [`lucene_cluster`] | measured `searchengine` trace, single FIFO |
//!
//! Sensitivity variants (service distribution, load balancer, queue
//! discipline — §5.4) are exposed through [`queueing_custom`].
//!
//! [`runner`] adapts a [`WorkloadSpec`] to the
//! [`reissue_core::adaptive::System`] interface so the §4.3 adaptive
//! optimizer can drive it, and bundles the common experiment loop
//! (probe → optimize → run) used by every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
mod spec;

pub use runner::{adapt_policy, optimal_policy_static, SimSystem};
pub use simulator::RunConfig;
pub use spec::{DistSpec, ServiceSpec, WorkloadSpec};

use simulator::{Balancer, ClusterConfig, Discipline, Interference};

/// Pareto service-time parameters used throughout §5 of the paper.
pub const PAPER_PARETO_SHAPE: f64 = 1.1;
/// Pareto mode (scale) used throughout §5.
pub const PAPER_PARETO_MODE: f64 = 2.0;
/// Servers in the simulated cluster (§5.1).
pub const PAPER_SERVERS: usize = 10;
/// Client connections per server for the Redis round-robin model.
pub const REDIS_CONNECTIONS: usize = 16;

/// The §5.1 *Independent* workload: infinite servers (no queueing),
/// primary and reissue service times iid Pareto(1.1, 2.0).
pub fn independent(seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "independent".into(),
        cluster: ClusterConfig {
            servers: 0,
            ..ClusterConfig::default()
        },
        service: ServiceSpec::Iid(DistSpec::Pareto {
            shape: PAPER_PARETO_SHAPE,
            mode: PAPER_PARETO_MODE,
        }),
        utilization: None,
        seed,
    }
}

/// The §5.1 *Correlated* workload: infinite servers, reissue service
/// time `Y = r·x + Z` with linear correlation ratio `r` (paper: 0.5).
pub fn correlated(r: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("correlated(r={r})"),
        cluster: ClusterConfig {
            servers: 0,
            ..ClusterConfig::default()
        },
        service: ServiceSpec::Correlated {
            dist: DistSpec::Pareto {
                shape: PAPER_PARETO_SHAPE,
                mode: PAPER_PARETO_MODE,
            },
            r,
        },
        utilization: None,
        seed,
    }
}

/// The §5.1 *Queueing* workload: 10 FIFO servers, Poisson arrivals at
/// `utilization`, random load balancing, correlated service times.
pub fn queueing(utilization: f64, r: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("queueing(u={utilization},r={r})"),
        cluster: ClusterConfig {
            servers: PAPER_SERVERS,
            ..ClusterConfig::default()
        },
        service: ServiceSpec::Correlated {
            dist: DistSpec::Pareto {
                shape: PAPER_PARETO_SHAPE,
                mode: PAPER_PARETO_MODE,
            },
            r,
        },
        utilization: Some(utilization),
        seed,
    }
}

/// A §5.4 sensitivity variant of the Queueing workload: choose the
/// service distribution, correlation, load balancer and discipline.
pub fn queueing_custom(
    dist: DistSpec,
    r: f64,
    utilization: f64,
    balancer: Balancer,
    discipline: Discipline,
    seed: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("queueing-custom(u={utilization})"),
        cluster: ClusterConfig {
            servers: PAPER_SERVERS,
            balancer,
            discipline,
            ..ClusterConfig::default()
        },
        service: if r == 0.0 {
            ServiceSpec::Iid(dist)
        } else {
            ServiceSpec::Correlated { dist, r }
        },
        utilization: Some(utilization),
        seed,
    }
}

/// The §6.2 Redis set-intersection cluster: 10 servers executing the
/// measured intersection-cost trace under round-robin connection
/// scheduling (Redis's event loop).
///
/// `costs_ms` comes from [`kvstore::Trace::generate`] (use
/// [`redis_trace`] for the paper's configuration); reissues re-execute
/// the same query with 5 % cost jitter.
pub fn redis_cluster(costs_ms: Vec<f64>, utilization: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("redis(u={utilization})"),
        cluster: ClusterConfig {
            servers: PAPER_SERVERS,
            discipline: Discipline::RoundRobin {
                connections: REDIS_CONNECTIONS,
            },
            // Background interference (fork for persistence snapshots,
            // expiry cycles, co-located jobs): rare ~100 ms-scale
            // stalls, ~2% of capacity. See DESIGN.md ("substitutions").
            interference: Some(Interference {
                mean_interval: 5_000.0,
                mean_duration: 100.0,
            }),
            ..ClusterConfig::default()
        },
        service: ServiceSpec::Trace {
            costs_ms,
            jitter: 0.05,
        },
        utilization: Some(utilization),
        seed,
    }
}

/// The §6.3 Lucene search cluster: 10 servers executing the measured
/// BM25 query-cost trace under a single FIFO per server.
pub fn lucene_cluster(costs_ms: Vec<f64>, utilization: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("lucene(u={utilization})"),
        cluster: ClusterConfig {
            servers: PAPER_SERVERS,
            discipline: Discipline::Fifo,
            // Background interference (JVM GC pauses, segment merges,
            // page-cache churn): ~300 ms-scale stalls, ~4% of capacity,
            // putting the baseline P99/mean ratio in the paper's
            // regime (§6.3; see DESIGN.md "substitutions").
            interference: Some(Interference {
                mean_interval: 8_000.0,
                mean_duration: 300.0,
            }),
            ..ClusterConfig::default()
        },
        service: ServiceSpec::Trace {
            costs_ms,
            jitter: 0.05,
        },
        utilization: Some(utilization),
        seed,
    }
}

/// Generates the paper-scale Redis trace (1 000 sets over `1..=10⁶`,
/// 40 000 intersections), calibrated to the paper's measured mean of
/// 2.366 ms. Expensive (~seconds); generate once and share across
/// utilizations.
pub fn redis_trace(seed: u64) -> Vec<f64> {
    let dataset = kvstore::Dataset::generate(kvstore::DatasetConfig {
        seed,
        ..kvstore::DatasetConfig::default()
    });
    let mut trace = kvstore::Trace::generate(
        &dataset,
        kvstore::WorkloadConfig {
            seed: seed ^ 0x7ace,
            ..kvstore::WorkloadConfig::default()
        },
    );
    trace.calibrate_to_mean(2.366);
    trace.costs_ms
}

/// Generates the Lucene query-cost trace (synthetic Zipf corpus, 10 000
/// BM25 queries), calibrated to the paper's measured mean of 39.73 ms.
/// Expensive (~seconds); generate once and share across utilizations.
pub fn lucene_trace(seed: u64) -> Vec<f64> {
    let corpus = searchengine::Corpus::generate(searchengine::CorpusConfig {
        seed,
        ..searchengine::CorpusConfig::default()
    });
    let index = corpus.build_index();
    let mut trace = searchengine::QueryTrace::generate(
        &index,
        searchengine::QueryWorkloadConfig {
            seed: seed ^ 0x10ce,
            ..searchengine::QueryWorkloadConfig::default()
        },
        100.0,
    );
    trace.calibrate_to_mean(39.73);
    trace.costs_ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use reissue_core::ReissuePolicy;

    #[test]
    fn independent_has_no_queueing() {
        let spec = independent(1);
        let r = spec.run(&RunConfig::new(2_000), &ReissuePolicy::None);
        for q in r.measured() {
            assert_eq!(q.primary_wait, 0.0);
        }
    }

    #[test]
    fn queueing_utilization_close_to_target() {
        let spec = queueing(0.3, 0.0, 2);
        let r = spec.run(&RunConfig::new(30_000), &ReissuePolicy::None);
        let u = r.utilization();
        // Pareto(1.1) has huge service variance: generous tolerance.
        assert!((u - 0.3).abs() < 0.12, "u={u}");
    }

    #[test]
    fn hedging_beats_baseline_on_queueing() {
        // Pareto(1.1) service times make single-run P95 noisy; check
        // a strong hedging policy across paired seeds.
        for seed in [3, 4, 5] {
            let spec = queueing(0.3, 0.5, seed);
            let run = RunConfig::new(30_000);
            let base = spec.run(&run, &ReissuePolicy::None);
            let hedged = spec.run(&run, &ReissuePolicy::single_r(50.0, 1.0));
            assert!(
                hedged.quantile(0.95) < base.quantile(0.95),
                "seed {seed}: hedged {} !< base {}",
                hedged.quantile(0.95),
                base.quantile(0.95)
            );
        }
    }

    #[test]
    fn sample_pairs_reflect_correlation() {
        let spec = correlated(0.9, 4);
        let pairs = spec.sample_pairs(20_000, 4);
        let rho = distributions::pearson(&pairs);
        // Pareto tails make Pearson noisy; just check positivity.
        assert!(rho.unwrap_or(0.0) > 0.05, "rho={rho:?}");
        let spec0 = independent(4);
        let pairs0 = spec0.sample_pairs(20_000, 4);
        assert!(pairs0.iter().all(|p| p.0 >= 2.0 && p.1 >= 2.0));
    }

    #[test]
    fn trace_cluster_runs() {
        // Tiny synthetic trace standing in for the Redis costs.
        let costs: Vec<f64> = (0..500)
            .map(|i| if i % 100 == 0 { 50.0 } else { 1.0 })
            .collect();
        let spec = redis_cluster(costs, 0.4, 5);
        let r = spec.run(&RunConfig::new(5_000), &ReissuePolicy::single_r(2.0, 0.5));
        assert_eq!(r.records.len(), 5_000);
        assert!(r.reissue_rate() > 0.0);
    }
}
