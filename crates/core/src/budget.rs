//! Reissue-budget selection (§4.4): expanding/halving search for the
//! latency-optimal budget, and SLA-constrained budget minimization.
//!
//! Tail latency as a function of the reissue budget is typically
//! bowl-shaped ("a parabola", §4.4): small budgets leave latency on the
//! table, large budgets add enough load to hurt. The paper's procedure
//! walks the budget with a step `δ` that *grows* (`δ ← 3δ/2`) while the
//! latency keeps improving and *halves and reverses* (`δ ← −δ/2`) when
//! it regresses — an expanding binary search that homes in on the
//! extremum with few (expensive) system evaluations.

/// One probe of the budget search (Figure 8 plots these).
#[derive(Clone, Copy, Debug)]
pub struct BudgetTrial {
    /// Budget evaluated in this trial.
    pub budget: f64,
    /// Tail latency measured at that budget.
    pub latency: f64,
    /// Best budget known after this trial.
    pub best_budget: f64,
    /// Best latency known after this trial.
    pub best_latency: f64,
}

/// Result of a budget search.
#[derive(Clone, Debug)]
pub struct BudgetSearchResult {
    /// The best budget found.
    pub best_budget: f64,
    /// The tail latency at `best_budget`.
    pub best_latency: f64,
    /// Every probe, in order.
    pub trials: Vec<BudgetTrial>,
}

/// Finds the reissue budget minimizing tail latency, using the paper's
/// §4.4 procedure.
///
/// `eval(budget)` must run the system (typically: adapt a SingleR
/// policy at that budget, §4.3) and return the achieved tail latency.
/// The search starts at budget 0 with step `initial_delta` (the paper
/// uses 1%), probes `best + δ`, and updates `δ ← 3δ/2` on improvement
/// or `δ ← −δ/2` on regression. Budgets are clamped to `[0, max_budget]`.
///
/// # Panics
/// Panics if `initial_delta ≤ 0`, `max_budget ≤ 0` or `trials == 0`.
pub fn optimize_budget(
    mut eval: impl FnMut(f64) -> f64,
    initial_delta: f64,
    max_budget: f64,
    trials: usize,
) -> BudgetSearchResult {
    assert!(initial_delta > 0.0, "initial_delta must be positive");
    assert!(max_budget > 0.0, "max_budget must be positive");
    assert!(trials > 0, "need at least one trial");

    let mut best_budget = 0.0f64;
    let mut best_latency = eval(0.0);
    let mut delta = initial_delta;
    let mut log = vec![BudgetTrial {
        budget: 0.0,
        latency: best_latency,
        best_budget,
        best_latency,
    }];

    for _ in 1..trials {
        let candidate = (best_budget + delta).clamp(0.0, max_budget);
        let latency = eval(candidate);
        if latency < best_latency {
            best_budget = candidate;
            best_latency = latency;
            delta *= 1.5;
        } else {
            delta = -delta / 2.0;
        }
        log.push(BudgetTrial {
            budget: candidate,
            latency,
            best_budget,
            best_latency,
        });
        if delta.abs() < 1e-4 {
            break; // step has collapsed; further probes are noise
        }
    }

    BudgetSearchResult {
        best_budget,
        best_latency,
        trials: log,
    }
}

/// Minimizes the reissue budget subject to a tail-latency SLA
/// (`latency ≤ target`), per §4.4's "meeting tail-latency with minimal
/// resources".
///
/// The paper suggests reusing the budget search with latencies
/// transformed by `f(L) = min{T, L}`; the intent is that all budgets
/// meeting the SLA become equally good so the search settles on the
/// smallest. We implement the transform with an explicit lexicographic
/// tie-break — score `(max(L, T), budget)` — which makes "meets the SLA
/// with less budget" strictly better and avoids a plateau the
/// expand/halve walk cannot descend.
///
/// Returns `None` if no probed budget meets the SLA.
pub fn minimize_budget_for_sla(
    mut eval: impl FnMut(f64) -> f64,
    target: f64,
    initial_delta: f64,
    max_budget: f64,
    trials: usize,
) -> Option<(f64, f64)> {
    assert!(target > 0.0, "SLA target must be positive");
    let mut feasible: Option<(f64, f64)> = None; // (budget, latency)
    let result = optimize_budget(
        |b| {
            let latency = eval(b);
            if latency <= target {
                match feasible {
                    Some((fb, _)) if fb <= b => {}
                    _ => feasible = Some((b, latency)),
                }
                // Transformed score: all SLA-meeting budgets collapse to
                // the target, plus an infinitesimal budget penalty that
                // steers the walk toward smaller budgets.
                target * (1.0 + 1e-6 * b)
            } else {
                latency.max(target)
            }
        },
        initial_delta,
        max_budget,
        trials,
    );
    let _ = result;
    feasible
}

/// Brute-force variant: sweep budgets upward from `step` in increments
/// of `step` and return the first meeting the SLA. Simple, and exactly
/// what §4.4 describes as "a brute force search, starting at small
/// reissue rates". `O(max_budget / step)` evaluations worst case.
pub fn minimize_budget_for_sla_sweep(
    mut eval: impl FnMut(f64) -> f64,
    target: f64,
    step: f64,
    max_budget: f64,
) -> Option<(f64, f64)> {
    assert!(step > 0.0 && max_budget > 0.0);
    let mut b = 0.0;
    while b <= max_budget + 1e-12 {
        let latency = eval(b);
        if latency <= target {
            return Some((b, latency));
        }
        b += step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth bowl with minimum at 8% budget.
    fn bowl(b: f64) -> f64 {
        100.0 + 4000.0 * (b - 0.08) * (b - 0.08)
    }

    #[test]
    fn finds_bowl_minimum() {
        let r = optimize_budget(bowl, 0.01, 0.5, 20);
        assert!(
            (r.best_budget - 0.08).abs() < 0.02,
            "best={}",
            r.best_budget
        );
        assert!(r.best_latency <= bowl(0.0));
        // The trial log starts at budget 0.
        assert_eq!(r.trials[0].budget, 0.0);
    }

    #[test]
    fn monotone_decreasing_pushes_to_cap() {
        // If more budget always helps, the search should drift upward.
        let r = optimize_budget(|b| 100.0 - 50.0 * b, 0.01, 0.2, 25);
        assert!(r.best_budget > 0.1, "best={}", r.best_budget);
    }

    #[test]
    fn monotone_increasing_stays_at_zero() {
        // If any reissue hurts (overload), best stays 0.
        let r = optimize_budget(|b| 100.0 + 500.0 * b, 0.01, 0.5, 15);
        assert_eq!(r.best_budget, 0.0);
        assert_eq!(r.best_latency, 100.0);
    }

    #[test]
    fn trials_are_recorded_and_best_is_prefix_min() {
        let r = optimize_budget(bowl, 0.01, 0.5, 12);
        let mut best = f64::INFINITY;
        for t in &r.trials {
            best = best.min(t.latency);
            assert!((t.best_latency - best).abs() < 1e-12);
        }
    }

    #[test]
    fn budget_never_leaves_bounds() {
        let r = optimize_budget(bowl, 0.05, 0.1, 30);
        for t in &r.trials {
            assert!((0.0..=0.1).contains(&t.budget), "budget={}", t.budget);
        }
    }

    #[test]
    fn sla_minimization_finds_small_budget() {
        // Latency 200 at b=0 dropping linearly; SLA 150 needs b ≥ 0.05.
        let eval = |b: f64| (200.0 - 1000.0 * b).max(50.0);
        let (b, l) = minimize_budget_for_sla(eval, 150.0, 0.01, 0.5, 30).unwrap();
        assert!(l <= 150.0);
        assert!(b < 0.12, "b={b}");

        let (b2, l2) = minimize_budget_for_sla_sweep(eval, 150.0, 0.01, 0.5).unwrap();
        assert!(l2 <= 150.0);
        assert!((b2 - 0.05).abs() < 0.011, "b2={b2}");
    }

    #[test]
    fn sla_unreachable_returns_none() {
        let eval = |_b: f64| 500.0;
        assert!(minimize_budget_for_sla(eval, 100.0, 0.01, 0.3, 10).is_none());
        assert!(minimize_budget_for_sla_sweep(eval, 100.0, 0.05, 0.3).is_none());
    }

    #[test]
    #[should_panic(expected = "initial_delta")]
    fn bad_delta_panics() {
        let _ = optimize_budget(|_| 1.0, 0.0, 0.5, 5);
    }
}
