//! Core algorithms from *Optimal Reissue Policies for Reducing Tail
//! Latency* (Kaler, He, Elnikety — SPAA 2017).
//!
//! An interactive service can cut its tail latency by *reissuing*
//! (duplicating) requests that have not completed. This crate implements
//! the paper's policy families and every algorithm it presents:
//!
//! * [`policy`] — the [`policy::ReissuePolicy`] families: **SingleD**
//!   (reissue after a deterministic delay `d`, "Tail at Scale" hedging),
//!   **SingleR** (reissue after delay `d` *with probability `q`*, the
//!   paper's contribution) and **MultipleR** (multiple stages; provably
//!   no better than SingleR).
//! * [`model`] — the analytical model of §2–§3: success probabilities
//!   (Equations 1, 3, 8) and expected reissue budgets (Equations 2, 4,
//!   15) over abstract response-time distributions.
//! * [`ecdf`] — the paper's `DiscreteCDF` (Figure 1, line 21): a strict
//!   `<` empirical CDF over sorted response-time samples.
//! * [`optimizer`] — `ComputeOptimalSingleR` (Figure 1): the
//!   `Θ(N + sort N)` data-driven parameter search, plus the
//!   `Θ(N log N)` correlation-aware variant of §4.2.
//! * [`adaptive`] — iterative adaptation for load-dependent queueing
//!   delays (§4.3): refine the reissue delay with a learning rate until
//!   predicted and observed tail latencies converge.
//! * [`censored`] — Kaplan–Meier completion of censored
//!   `(primary, reissue)` race pairs, feeding the §4.2 correlated
//!   optimizer from serving systems that cancel tied requests.
//! * [`budget`] — reissue-budget selection (§4.4): the expanding/halving
//!   binary search and SLA-constrained budget minimization.
//! * [`load`] — client-side load sensing for utilization-aware
//!   hedging: an offered-rate / in-flight / service-time estimator
//!   ([`load::LoadSignal`]) and the damping rule
//!   ([`load::LoadShaper`]) that shrinks the effective reissue budget
//!   as estimated utilization rises, so online adaptation survives
//!   redundancy's load-dependent sign flip.
//! * [`metrics`] — exact and streaming quantiles, latency-reduction
//!   ratios, the paper's *remediation rate*, and service-time histograms.
//! * [`discipline`] — the server-side queue disciplines (FIFO,
//!   primary-priority, round-robin, cost-priority, aged
//!   shortest-burn) shared by the cluster simulator and the TCP
//!   serving path, so reissue policy × scheduling interactions are
//!   measured on identical semantics.
//!
//! The discrete-event simulator and the Redis/Lucene-like engines that
//! exercise these algorithms live in sibling crates (`simulator`,
//! `kvstore`, `searchengine`, `workloads`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod budget;
pub mod censored;
pub mod discipline;
pub mod ecdf;
pub mod kofn;
pub mod load;
pub mod metrics;
pub mod model;
pub mod online;
pub mod optimizer;
pub mod policy;

pub use ecdf::Ecdf;
pub use optimizer::{
    compute_optimal_single_r, compute_optimal_single_r_correlated, predict_latency, OptimalSingleR,
};
pub use policy::ReissuePolicy;
