//! Iterative adaptation for load-dependent queueing delays (§4.3).
//!
//! Reissue requests add load, which perturbs the very response-time
//! distributions the optimizer was computed from. The paper's fix is a
//! feedback loop: run the system under the current policy, re-optimize
//! on the *observed* distributions, and move the reissue delay a
//! fraction `λ` of the way toward the new optimum:
//!
//! ```text
//! d' = d + λ · (d_local − d)
//! ```
//!
//! iterating until the optimizer's predicted tail latency matches the
//! observed one and the measured reissue rate matches the budget.

use crate::ecdf::Ecdf;
use crate::optimizer::{
    compute_optimal_single_r, compute_optimal_single_r_correlated, predict_latency,
};
use crate::policy::ReissuePolicy;

/// Observations from one execution of a system under a reissue policy.
///
/// `primary` must cover *all* queries (response time of the primary
/// request alone); `pairs` holds `(primary, reissue)` response times for
/// the subset of queries that actually reissued, with the reissue
/// response measured from its own dispatch.
#[derive(Clone, Debug, Default)]
pub struct RunSample {
    /// Primary-request response time of every query.
    pub primary: Vec<f64>,
    /// `(primary, reissue)` response-time pairs of reissued queries.
    pub pairs: Vec<(f64, f64)>,
    /// Realized end-to-end latency of every query
    /// (`min(primary, d + reissue)`).
    pub latency: Vec<f64>,
    /// Measured reissue rate `M/N`.
    pub reissue_rate: f64,
}

/// A system that can be executed under a policy and observed — the
/// interface between the adaptive optimizer and a real service,
/// simulator or testbed.
pub trait System {
    /// Runs the workload under `policy` and reports observations.
    fn run(&mut self, policy: &ReissuePolicy) -> RunSample;
}

impl<F: FnMut(&ReissuePolicy) -> RunSample> System for F {
    fn run(&mut self, policy: &ReissuePolicy) -> RunSample {
        self(policy)
    }
}

/// One step of the adaptive loop, for inspection and plotting
/// (Figure 2b plots `predicted` vs `observed` per trial).
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// Policy used for this trial.
    pub delay: f64,
    /// Reissue probability used for this trial.
    pub probability: f64,
    /// Tail latency predicted for *this trial's policy*. For trial 0 it
    /// is the in-sample prediction (estimated from trial 0's own data —
    /// an estimator sanity check); for later trials the prediction was
    /// made from the previous trial's observations, so
    /// `predicted ≈ observed` is the paper's convergence criterion.
    pub predicted: f64,
    /// Tail latency observed in this trial.
    pub observed: f64,
    /// What the optimizer believed the best achievable tail latency was,
    /// given this trial's observations (its own policy
    /// recommendation — not necessarily the policy run next).
    pub optimizer_target: f64,
    /// Measured reissue rate in this trial.
    pub reissue_rate: f64,
}

/// Result of the adaptive optimization.
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// The final SingleR policy.
    pub policy: ReissuePolicy,
    /// Per-trial telemetry, in order.
    pub trials: Vec<Trial>,
    /// Whether the convergence criterion was met before `max_trials`.
    pub converged: bool,
}

/// Configuration of the adaptive loop.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Target tail percentile `k` (e.g. 0.99).
    pub k: f64,
    /// Reissue budget `B`.
    pub budget: f64,
    /// Learning rate `λ ∈ (0, 1]` for the delay update.
    pub learning_rate: f64,
    /// Maximum number of trials (system executions).
    pub max_trials: usize,
    /// Relative tolerance for declaring convergence of predicted vs
    /// observed tail latency, and absolute tolerance for the reissue
    /// rate vs the budget.
    pub tolerance: f64,
}

impl AdaptiveConfig {
    /// A configuration matching the paper's system experiments:
    /// `λ = 0.5`, 10 trials (§6.1).
    pub fn paper_system(k: f64, budget: f64) -> Self {
        AdaptiveConfig {
            k,
            budget,
            learning_rate: 0.5,
            max_trials: 10,
            tolerance: 0.05,
        }
    }
}

/// Runs the adaptive SingleR policy refinement of §4.3.
///
/// Starts from the immediate-reissue probe `SingleR(d = 0, q = B)`
/// (which consumes exactly the budget and explores the reissue
/// response-time distribution), then repeatedly re-optimizes on the
/// observed distributions and moves `d` by the learning rate. The
/// reissue probability is recomputed each step so the *expected* rate
/// stays on budget as the distribution shifts.
///
/// # Panics
/// Panics if the configuration is out of range or the system returns an
/// empty sample.
pub fn adapt<S: System + ?Sized>(system: &mut S, cfg: &AdaptiveConfig) -> AdaptiveResult {
    assert!((0.0..1.0).contains(&cfg.k), "k must be in [0,1)");
    assert!((0.0..=1.0).contains(&cfg.budget), "budget must be in [0,1]");
    assert!(
        cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0,
        "learning rate must be in (0,1]"
    );
    assert!(cfg.max_trials > 0, "need at least one trial");

    let mut delay = 0.0f64;
    let mut prob = cfg.budget.min(1.0);
    let mut trials: Vec<Trial> = Vec::with_capacity(cfg.max_trials);
    let mut converged = false;
    // Prediction for the upcoming trial's policy; NaN means "none yet"
    // (trial 0 substitutes its in-sample prediction).
    let mut pending_prediction = f64::NAN;

    for _ in 0..cfg.max_trials {
        let policy = ReissuePolicy::single_r(delay, prob);
        let sample = system.run(&policy);
        assert!(
            !sample.latency.is_empty() && !sample.primary.is_empty(),
            "system returned an empty sample"
        );
        let observed = Ecdf::new(sample.latency.clone()).quantile(cfg.k);

        // Re-optimize on observed distributions. Prefer the
        // correlation-aware optimizer whenever we have joint samples.
        let local = if sample.pairs.len() >= 2 {
            compute_optimal_single_r_correlated(&sample.primary, &sample.pairs, cfg.k, cfg.budget)
        } else {
            // Nothing was reissued (e.g. q=0 or tiny run): fall back to
            // treating reissues as exchangeable with primaries.
            compute_optimal_single_r(&sample.primary, &sample.primary, cfg.k, cfg.budget)
        };

        let predicted = if pending_prediction.is_finite() {
            pending_prediction
        } else {
            // Trial 0: in-sample prediction of the probe policy.
            predict_latency(&sample.primary, &sample.pairs, cfg.k, delay, prob)
        };
        trials.push(Trial {
            delay,
            probability: prob,
            predicted,
            observed,
            optimizer_target: local.predicted_latency,
            reissue_rate: sample.reissue_rate,
        });

        // Convergence needs three things: predictions track reality,
        // the measured rate is on budget, and the optimizer has stopped
        // asking to move the delay (otherwise an accurate in-sample
        // prediction would halt the climb long before the fixed point).
        let pred_ok =
            (predicted - observed).abs() <= cfg.tolerance * observed.max(f64::MIN_POSITIVE);
        let rate_ok = (sample.reissue_rate - cfg.budget).abs() <= cfg.tolerance.max(0.01);
        let delay_ok = (local.delay - delay).abs()
            <= cfg.tolerance * local.delay.max(delay).max(f64::MIN_POSITIVE);

        // d' = d + λ(d_local − d); q re-targeted to the budget under the
        // newly observed primary distribution.
        delay += cfg.learning_rate * (local.delay - delay);
        let ecdf = Ecdf::new(sample.primary.clone());
        let outstanding = ecdf.sf_weak(delay);
        prob = if outstanding > 0.0 {
            (cfg.budget / outstanding).min(1.0)
        } else {
            1.0
        };
        pending_prediction = predict_latency(&sample.primary, &sample.pairs, cfg.k, delay, prob);

        if pred_ok && rate_ok && delay_ok && trials.len() > 1 {
            converged = true;
            break;
        }
    }

    AdaptiveResult {
        policy: ReissuePolicy::single_r(delay, prob),
        trials,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use distributions::{Exponential, Sample};

    /// A static synthetic system: no queueing feedback, response times
    /// iid Exp(1); reissue latency independent Exp(1).
    fn static_system(seed: u64) -> impl FnMut(&ReissuePolicy) -> RunSample {
        let mut rng = seeded(seed);
        move |policy: &ReissuePolicy| {
            let d = Exponential::new(1.0);
            let n = 20_000;
            let mut primary = Vec::with_capacity(n);
            let mut pairs = Vec::new();
            let mut latency = Vec::with_capacity(n);
            let mut reissued = 0usize;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                let sched = policy.sample_schedule(&mut rng);
                let mut lat = x;
                for &delay in &sched {
                    if x > delay {
                        reissued += 1;
                        let y = d.sample(&mut rng);
                        pairs.push((x, y));
                        lat = lat.min(delay + y);
                    }
                }
                primary.push(x);
                latency.push(lat);
            }
            RunSample {
                primary,
                pairs,
                latency,
                reissue_rate: reissued as f64 / n as f64,
            }
        }
    }

    #[test]
    fn adapt_improves_over_no_reissue() {
        let mut sys = static_system(42);
        let cfg = AdaptiveConfig {
            k: 0.95,
            budget: 0.1,
            learning_rate: 0.5,
            max_trials: 8,
            tolerance: 0.05,
        };
        let result = adapt(&mut sys, &cfg);
        let base = Exponential::new(1.0);
        let base_p95 = -(0.05f64).ln(); // Exp(1) P95
        let _ = base;
        let last = result.trials.last().unwrap();
        assert!(
            last.observed < base_p95,
            "observed {} should beat baseline {base_p95}",
            last.observed
        );
        // The policy must be on budget.
        assert!(
            (last.reissue_rate - 0.1).abs() < 0.03,
            "rate={}",
            last.reissue_rate
        );
    }

    #[test]
    fn adapt_converges_on_static_system() {
        let mut sys = static_system(7);
        let cfg = AdaptiveConfig {
            k: 0.95,
            budget: 0.2,
            learning_rate: 0.5,
            max_trials: 10,
            tolerance: 0.1,
        };
        let result = adapt(&mut sys, &cfg);
        assert!(result.converged, "should converge on a static system");
        // Prediction error shrinks over trials.
        let first_err = {
            let t = &result.trials[0];
            (t.predicted - t.observed).abs() / t.observed
        };
        let last_err = {
            let t = result.trials.last().unwrap();
            (t.predicted - t.observed).abs() / t.observed
        };
        assert!(
            last_err <= first_err + 0.05,
            "error grew: {first_err} -> {last_err}"
        );
    }

    #[test]
    fn trials_record_policy_used() {
        let mut sys = static_system(9);
        let cfg = AdaptiveConfig {
            k: 0.9,
            budget: 0.15,
            learning_rate: 0.3,
            max_trials: 4,
            tolerance: 1e-9, // never converge -> all trials run
        };
        let result = adapt(&mut sys, &cfg);
        assert_eq!(result.trials.len(), 4);
        // First trial is the probe policy (d=0, q=B).
        assert_eq!(result.trials[0].delay, 0.0);
        assert!((result.trials[0].probability - 0.15).abs() < 1e-12);
        // Delays move monotonically toward the optimum at this λ.
        assert!(result.trials[1].delay >= result.trials[0].delay);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_panics() {
        let mut sys = static_system(1);
        let cfg = AdaptiveConfig {
            k: 0.9,
            budget: 0.1,
            learning_rate: 0.0,
            max_trials: 2,
            tolerance: 0.05,
        };
        let _ = adapt(&mut sys, &cfg);
    }

    #[test]
    fn zero_budget_stays_no_reissue() {
        let mut sys = static_system(3);
        let cfg = AdaptiveConfig {
            k: 0.95,
            budget: 0.0,
            learning_rate: 0.5,
            max_trials: 3,
            tolerance: 0.05,
        };
        let result = adapt(&mut sys, &cfg);
        for t in &result.trials {
            assert_eq!(t.reissue_rate, 0.0);
        }
    }
}
