//! Byte-budget accounting for k-of-n fragment reads.
//!
//! With an erasure-coded stripe a value of `V` bytes splits into `k`
//! data fragments of `ceil(V / k)` bytes each (plus parity clones of
//! the same size), so the *primary wave* of a read transfers the same
//! `≈ V` bytes whether it is one full-copy replica read or `k`
//! fragment reads — but a **reissue** costs a full extra `V` bytes
//! under replica hedging and only `V / k` under fragment hedging
//! (Aggarwal et al., "Taming Tail Latency for Erasure-coded,
//! Distributed Storage Systems").
//!
//! That asymmetry is what makes the two schemes comparable **at equal
//! byte budget**: a replica-hedging policy reissuing a fraction `q` of
//! queries spends the same extra bytes as a fragment-hedging policy
//! reissuing `k·q` of them. These helpers keep that arithmetic in one
//! tested place so the client budget caps and the A/B figures can't
//! drift apart.

/// Reissue-probability budget equivalent to a replica-hedging budget
/// `q_replica` when a reissue fetches one fragment of a `k`-way
/// stripe: `min(1, k · q_replica)`. The clamp matters — a fragment
/// reissue probability cannot exceed 1 per stage, so very aggressive
/// replica budgets saturate instead of overflowing.
pub fn fragment_budget(q_replica: f64, k: usize) -> f64 {
    assert!(k >= 1, "a stripe has at least one data fragment");
    (q_replica.max(0.0) * k as f64).min(1.0)
}

/// Mean bytes transferred per query, in units of the value size `V`,
/// when a fraction `reissue_rate` of queries dispatch one extra
/// fragment of a `k`-way stripe: `1 + reissue_rate / k`. Replica
/// hedging is the `k = 1` case (every copy is a whole value).
pub fn bytes_per_query(k: usize, reissue_rate: f64) -> f64 {
    assert!(k >= 1, "a stripe has at least one data fragment");
    1.0 + reissue_rate.max(0.0) / k as f64
}

/// Whether two realized per-query byte costs agree within a relative
/// tolerance — the acceptance gate for "equal byte budget" A/B arms
/// (`tol = 0.05` for the ±5% criterion). The comparison is symmetric
/// (relative to the larger of the two).
pub fn budgets_match(bytes_a: f64, bytes_b: f64, tol: f64) -> bool {
    let denom = bytes_a.abs().max(bytes_b.abs());
    if denom == 0.0 {
        return true;
    }
    (bytes_a - bytes_b).abs() / denom <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_budget_scales_and_clamps() {
        assert!((fragment_budget(0.05, 2) - 0.10).abs() < 1e-12);
        assert!((fragment_budget(0.05, 4) - 0.20).abs() < 1e-12);
        // k = 1 is replica hedging: unchanged.
        assert!((fragment_budget(0.05, 1) - 0.05).abs() < 1e-12);
        // Saturation, not overflow.
        assert!((fragment_budget(0.6, 3) - 1.0).abs() < 1e-12);
        assert_eq!(fragment_budget(-0.1, 2), 0.0);
    }

    #[test]
    fn bytes_per_query_equalizes_at_scaled_budget() {
        // A replica arm at q and a fragment arm at k·q spend the same
        // bytes per query: 1 + q.
        for k in [2usize, 3, 4] {
            for q in [0.02, 0.05, 0.08] {
                let replica = bytes_per_query(1, q);
                let fragment = bytes_per_query(k, fragment_budget(q, k));
                assert!(
                    (replica - fragment).abs() < 1e-12,
                    "k={k} q={q}: {replica} vs {fragment}"
                );
            }
        }
    }

    #[test]
    fn budgets_match_tolerance() {
        assert!(budgets_match(1.05, 1.05, 0.0));
        assert!(budgets_match(1.00, 1.05, 0.05));
        assert!(!budgets_match(1.00, 1.12, 0.05));
        assert!(budgets_match(0.0, 0.0, 0.05));
    }
}
