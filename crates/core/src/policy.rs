//! Reissue policy families: SingleD, SingleR, DoubleR and MultipleR.

use rand::rngs::SmallRng;
use rand::Rng;

/// One reissue stage of a [`ReissuePolicy`]: at time `delay` after the
/// primary dispatch, if the query has not completed, send one reissue
/// request with probability `prob`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stage {
    /// Reissue delay `d ≥ 0` measured from the primary dispatch.
    pub delay: f64,
    /// Reissue probability `q ∈ [0, 1]`.
    pub prob: f64,
}

impl Stage {
    /// Creates a stage, validating its parameters.
    ///
    /// # Panics
    /// Panics if `delay` is negative/NaN or `prob ∉ [0, 1]`.
    pub fn new(delay: f64, prob: f64) -> Self {
        assert!(delay >= 0.0 && delay.is_finite(), "stage delay must be ≥ 0");
        assert!((0.0..=1.0).contains(&prob), "stage prob must be in [0,1]");
        Stage { delay, prob }
    }
}

/// A reissue policy, as defined in §2–§3 of the paper.
///
/// All variants are special cases of MultipleR:
///
/// | Family    | Stages | Constraint            | Paper section |
/// |-----------|--------|-----------------------|---------------|
/// | `None`    | 0      | —                     | baseline      |
/// | `SingleD` | 1      | `q = 1`               | §2.2          |
/// | `SingleR` | 1      | —                     | §2.3          |
/// | `MultipleR` | n    | delays non-decreasing | §3.1          |
///
/// The paper's headline theorem (Thm 3.2) shows the optimal `MultipleR`
/// policy is matched by a `SingleR` policy with the same budget, so
/// production systems only ever need `SingleR`; the other families exist
/// for baselines and for validating the theorem numerically.
#[derive(Clone, Debug, PartialEq)]
pub enum ReissuePolicy {
    /// Never reissue.
    None,
    /// Reissue once, deterministically, after `delay` — the "delayed
    /// reissue" / hedged-request strategy of Dean & Barroso.
    SingleD {
        /// Reissue delay.
        delay: f64,
    },
    /// Reissue once after `delay` with probability `prob` — the paper's
    /// SingleR family.
    SingleR {
        /// Reissue delay.
        delay: f64,
        /// Reissue probability.
        prob: f64,
    },
    /// Reissue up to `stages.len()` times; stage `i` fires at its delay
    /// (if the query is still incomplete) with its own probability.
    MultipleR {
        /// The reissue stages, ordered by non-decreasing delay.
        stages: Vec<Stage>,
    },
}

impl ReissuePolicy {
    /// Immediate reissue of all requests (`d = 0`, `q = 1`) — the
    /// "immediate reissue" strategy of prior work, for low-load systems.
    pub fn immediate() -> Self {
        ReissuePolicy::SingleR {
            delay: 0.0,
            prob: 1.0,
        }
    }

    /// Convenience constructor for [`ReissuePolicy::SingleR`].
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`Stage::new`]).
    pub fn single_r(delay: f64, prob: f64) -> Self {
        let s = Stage::new(delay, prob);
        ReissuePolicy::SingleR {
            delay: s.delay,
            prob: s.prob,
        }
    }

    /// Convenience constructor for [`ReissuePolicy::SingleD`].
    ///
    /// # Panics
    /// Panics on a negative or NaN delay.
    pub fn single_d(delay: f64) -> Self {
        let s = Stage::new(delay, 1.0);
        ReissuePolicy::SingleD { delay: s.delay }
    }

    /// Convenience constructor for a two-stage policy (the paper's
    /// DoubleR family).
    ///
    /// # Panics
    /// Panics on invalid stages or `d2 < d1`.
    pub fn double_r(d1: f64, q1: f64, d2: f64, q2: f64) -> Self {
        assert!(d2 >= d1, "DoubleR requires d2 ≥ d1");
        ReissuePolicy::MultipleR {
            stages: vec![Stage::new(d1, q1), Stage::new(d2, q2)],
        }
    }

    /// Builds a MultipleR policy from stages, validating ordering.
    ///
    /// # Panics
    /// Panics if delays are not non-decreasing or any stage is invalid.
    pub fn multiple_r(stages: Vec<(f64, f64)>) -> Self {
        let stages: Vec<Stage> = stages.iter().map(|&(d, q)| Stage::new(d, q)).collect();
        assert!(
            stages.windows(2).all(|w| w[0].delay <= w[1].delay),
            "MultipleR stage delays must be non-decreasing"
        );
        ReissuePolicy::MultipleR { stages }
    }

    /// The policy's stages as a uniform slice-backed view.
    pub fn stages(&self) -> Vec<Stage> {
        match self {
            ReissuePolicy::None => Vec::new(),
            ReissuePolicy::SingleD { delay } => vec![Stage::new(*delay, 1.0)],
            ReissuePolicy::SingleR { delay, prob } => vec![Stage::new(*delay, *prob)],
            ReissuePolicy::MultipleR { stages } => stages.clone(),
        }
    }

    /// Number of reissue stages.
    pub fn num_stages(&self) -> usize {
        match self {
            ReissuePolicy::None => 0,
            ReissuePolicy::SingleD { .. } | ReissuePolicy::SingleR { .. } => 1,
            ReissuePolicy::MultipleR { stages } => stages.len(),
        }
    }

    /// Whether this policy can ever reissue.
    pub fn is_active(&self) -> bool {
        self.stages().iter().any(|s| s.prob > 0.0)
    }

    /// Samples a reissue *schedule* for one query: the delays of the
    /// stages whose probability coin came up heads, in non-decreasing
    /// order. The executor must still check, when each delay elapses,
    /// whether the query is already complete (a won coin toss does not
    /// by itself consume budget — see Equation 4).
    ///
    /// Flipping all coins up-front is distributionally identical to
    /// flipping at fire time, because the coins are independent of the
    /// completion status, and it lets the simulator schedule timer
    /// events at arrival.
    pub fn sample_schedule(&self, rng: &mut SmallRng) -> Vec<f64> {
        self.sample_schedule_indexed(rng)
            .into_iter()
            .map(|(_, d)| d)
            .collect()
    }

    /// Like [`sample_schedule`](Self::sample_schedule), but each
    /// scheduled delay is tagged with its *stage index* in
    /// [`stages`](Self::stages) order — what a runtime needs to account
    /// reissues per stage (a lost coin toss leaves a hole in the
    /// sequence, so positions alone cannot identify the stage).
    pub fn sample_schedule_indexed(&self, rng: &mut SmallRng) -> Vec<(usize, f64)> {
        let stages = self.stages();
        let mut out = Vec::with_capacity(stages.len());
        for (i, s) in stages.into_iter().enumerate() {
            if s.prob >= 1.0 || (s.prob > 0.0 && rng.gen::<f64>() < s.prob) {
                out.push((i, s.delay));
            }
        }
        out
    }
}

impl std::fmt::Display for ReissuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReissuePolicy::None => write!(f, "None"),
            ReissuePolicy::SingleD { delay } => write!(f, "SingleD(d={delay:.3})"),
            ReissuePolicy::SingleR { delay, prob } => {
                write!(f, "SingleR(d={delay:.3}, q={prob:.3})")
            }
            ReissuePolicy::MultipleR { stages } => {
                write!(f, "MultipleR[")?;
                for (i, s) in stages.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(d={:.3}, q={:.3})", s.delay, s.prob)?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn stages_normalization() {
        assert!(ReissuePolicy::None.stages().is_empty());
        assert_eq!(
            ReissuePolicy::single_d(5.0).stages(),
            vec![Stage::new(5.0, 1.0)]
        );
        assert_eq!(
            ReissuePolicy::single_r(5.0, 0.3).stages(),
            vec![Stage::new(5.0, 0.3)]
        );
        let m = ReissuePolicy::multiple_r(vec![(1.0, 0.5), (2.0, 0.25)]);
        assert_eq!(m.num_stages(), 2);
    }

    #[test]
    fn immediate_policy() {
        let p = ReissuePolicy::immediate();
        assert_eq!(p, ReissuePolicy::single_r(0.0, 1.0));
        assert!(p.is_active());
    }

    #[test]
    fn is_active_edge_cases() {
        assert!(!ReissuePolicy::None.is_active());
        assert!(!ReissuePolicy::single_r(1.0, 0.0).is_active());
        assert!(ReissuePolicy::single_r(1.0, 0.01).is_active());
        assert!(ReissuePolicy::single_d(1.0).is_active());
    }

    #[test]
    fn schedule_deterministic_extremes() {
        let mut r = rng();
        // q = 1 always schedules, q = 0 never.
        for _ in 0..100 {
            assert_eq!(
                ReissuePolicy::single_r(3.0, 1.0).sample_schedule(&mut r),
                vec![3.0]
            );
            assert!(ReissuePolicy::single_r(3.0, 0.0)
                .sample_schedule(&mut r)
                .is_empty());
        }
    }

    #[test]
    fn schedule_rate_approximates_q() {
        let p = ReissuePolicy::single_r(2.0, 0.3);
        let mut r = rng();
        let n = 100_000;
        let hits = (0..n)
            .filter(|_| !p.sample_schedule(&mut r).is_empty())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn multiple_r_schedule_sorted() {
        let p = ReissuePolicy::multiple_r(vec![(1.0, 1.0), (2.0, 1.0), (5.0, 1.0)]);
        let mut r = rng();
        let sched = p.sample_schedule(&mut r);
        assert_eq!(sched, vec![1.0, 2.0, 5.0]);
    }

    #[test]
    fn indexed_schedule_tags_surviving_stages() {
        // Middle stage can never fire (q = 0): the indexed schedule
        // must report stage indices 0 and 2, not 0 and 1.
        let p = ReissuePolicy::multiple_r(vec![(1.0, 1.0), (2.0, 0.0), (5.0, 1.0)]);
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(p.sample_schedule_indexed(&mut r), vec![(0, 1.0), (2, 5.0)]);
        }
    }

    #[test]
    fn indexed_schedule_per_stage_rates() {
        // Each stage flips its own independent coin: empirical fire
        // rates must match q per stage. 50k trials give a binomial
        // σ ≈ 0.002 at q = 0.7, so ±0.015 is a ~7σ band — tight enough
        // to catch a swapped or shared coin, loose enough to never
        // flake on the pinned seed.
        let p = ReissuePolicy::multiple_r(vec![(1.0, 0.3), (4.0, 0.7)]);
        let mut r = rng();
        let n = 50_000;
        let mut hits = [0usize; 2];
        for _ in 0..n {
            for (idx, _) in p.sample_schedule_indexed(&mut r) {
                hits[idx] += 1;
            }
        }
        for (idx, q) in [(0usize, 0.3), (1, 0.7)] {
            let rate = hits[idx] as f64 / n as f64;
            assert!(
                (rate - q).abs() < 0.015,
                "stage {idx}: rate {rate} vs q {q}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn multiple_r_unsorted_panics() {
        let _ = ReissuePolicy::multiple_r(vec![(3.0, 0.5), (1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "prob")]
    fn bad_prob_panics() {
        let _ = ReissuePolicy::single_r(1.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn bad_delay_panics() {
        let _ = ReissuePolicy::single_r(-1.0, 0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ReissuePolicy::None), "None");
        assert_eq!(
            format!("{}", ReissuePolicy::single_r(1.0, 0.25)),
            "SingleR(d=1.000, q=0.250)"
        );
        assert!(
            format!("{}", ReissuePolicy::double_r(1.0, 0.5, 2.0, 0.25)).starts_with("MultipleR[")
        );
    }
}
