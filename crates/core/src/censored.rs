//! Censored-observation estimation for paired `(primary, reissue)`
//! samples.
//!
//! The §4.2 correlated optimizer
//! ([`crate::optimizer::compute_optimal_single_r_correlated`]) needs
//! *joint* samples of a query's primary and reissue response times. A
//! serving system with tied-request cancellation cannot observe them
//! directly: when the winner's cancel retracts the loser before it
//! executes, the loser's response time is unknown — all the client
//! learns is a **lower bound** (the time the loser had already been
//! outstanding when the retraction was confirmed). Dropping those pairs
//! would bias the joint distribution toward races the loser *finished*
//! (i.e. close races), which is precisely the correlation structure the
//! optimizer is trying to measure.
//!
//! This module treats retracted losers as right-censored observations
//! and completes them with the Kaplan–Meier product-limit estimator:
//! each censored value is replaced by its conditional expectation above
//! the censoring bound under the KM survival curve of its own marginal
//! (a bounds-bracketing completion — when no event mass lies above the
//! bound, the bound itself is used, the conservative bracket).
//!
//! ```
//! use reissue_core::censored::{complete_pairs, Obs};
//!
//! let pairs = vec![
//!     (Obs::Exact(1.0), Obs::Exact(2.0)),
//!     (Obs::Exact(5.0), Obs::Censored(1.5)), // loser retracted at 1.5
//! ];
//! let completed = complete_pairs(&pairs);
//! assert_eq!(completed.len(), 2);
//! assert!(completed[1].1 >= 1.5, "imputed value respects the bound");
//! ```

/// One possibly-censored response-time observation (milliseconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Obs {
    /// The request completed; its exact response time.
    Exact(f64),
    /// The request was retracted (tied-request cancel landed in time);
    /// its response time is only known to be at least this large.
    Censored(f64),
}

impl Obs {
    /// The observation's time component (exact value or censoring
    /// bound).
    pub fn value(self) -> f64 {
        match self {
            Obs::Exact(v) | Obs::Censored(v) => v,
        }
    }

    /// Whether this observation is right-censored.
    pub fn is_censored(self) -> bool {
        matches!(self, Obs::Censored(_))
    }
}

/// Kaplan–Meier product-limit estimator of a survival function from a
/// mix of exact (event) and right-censored observations.
///
/// `O(n log n)` to [`fit`](Self::fit); `O(log n)` per
/// [`survival`](Self::survival) or [`mean_beyond`](Self::mean_beyond)
/// probe (the serving path imputes one censored observation per probe
/// while holding the client's policy lock, so probes must not scan).
#[derive(Clone, Debug)]
pub struct KaplanMeier {
    /// `(event_time, S(t) just after the event)`, ascending in time.
    steps: Vec<(f64, f64)>,
    /// `tail[i] = ∫ S(t) dt` over `[steps[i].0, steps[last].0]` — the
    /// suffix integrals of the survival step function, so conditional
    /// means need no scan.
    tail: Vec<f64>,
}

impl KaplanMeier {
    /// Fits the estimator. Ties between events and censorings at the
    /// same time use the standard convention: events happen first
    /// (censored observations at `t` are still at risk at `t`).
    ///
    /// # Panics
    /// Panics on non-finite observation times.
    pub fn fit(obs: &[Obs]) -> Self {
        assert!(
            obs.iter().all(|o| o.value().is_finite()),
            "observations must be finite"
        );
        let mut sorted: Vec<(f64, bool)> =
            obs.iter().map(|o| (o.value(), o.is_censored())).collect();
        // Events (false) before censorings (true) at equal times.
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let n = sorted.len();
        let mut steps = Vec::new();
        let mut survival = 1.0f64;
        let mut i = 0usize;
        while i < n {
            let t = sorted[i].0;
            let mut events = 0usize;
            let mut j = i;
            while j < n && sorted[j].0 == t {
                if !sorted[j].1 {
                    events += 1;
                }
                j += 1;
            }
            let at_risk = n - i;
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                steps.push((t, survival));
            }
            i = j;
        }
        let mut tail = vec![0.0; steps.len()];
        for i in (0..steps.len().saturating_sub(1)).rev() {
            tail[i] = tail[i + 1] + steps[i].1 * (steps[i + 1].0 - steps[i].0);
        }
        KaplanMeier { steps, tail }
    }

    /// `Ŝ(t) = P(T > t)` under the product-limit estimate.
    pub fn survival(&self, t: f64) -> f64 {
        match self.steps.partition_point(|&(ti, _)| ti <= t) {
            0 => 1.0,
            i => self.steps[i - 1].1,
        }
    }

    /// Number of distinct event times.
    pub fn num_events(&self) -> usize {
        self.steps.len()
    }

    /// The restricted conditional mean `E[T | T > lb]`, integrating the
    /// KM survival curve from `lb` to the last event time (the standard
    /// restricted-mean convention — mass the estimator leaves beyond
    /// the last event is truncated there).
    ///
    /// Returns `lb` itself when no event mass lies above `lb` (nothing
    /// to integrate): the conservative lower bracket of the completed
    /// value.
    pub fn mean_beyond(&self, lb: f64) -> f64 {
        // First event strictly beyond lb; S(lb) is the survival just
        // before it.
        let idx = self.steps.partition_point(|&(ti, _)| ti <= lb);
        if idx == self.steps.len() {
            return lb; // no event mass beyond the bound
        }
        let s_lb = if idx == 0 { 1.0 } else { self.steps[idx - 1].1 };
        if s_lb <= 0.0 {
            return lb;
        }
        // ∫ S(t) dt over [lb, t_last] of the step function, then
        // normalize by S(lb): E[T − lb | T > lb]. The integral is the
        // flat stretch from lb to the next event plus the precomputed
        // suffix.
        let integral = s_lb * (self.steps[idx].0 - lb) + self.tail[idx];
        lb + integral / s_lb
    }
}

/// Completes a window of possibly-censored `(primary, reissue)` pairs
/// into exact pairs consumable by
/// [`crate::optimizer::compute_optimal_single_r_correlated`].
///
/// Each side's censored values are imputed independently from that
/// side's own marginal KM curve via [`KaplanMeier::mean_beyond`]. The
/// returned vector is index-aligned with `pairs`.
///
/// # Panics
/// Panics on non-finite observation times.
pub fn complete_pairs(pairs: &[(Obs, Obs)]) -> Vec<(f64, f64)> {
    let xs: Vec<Obs> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<Obs> = pairs.iter().map(|p| p.1).collect();
    complete_pairs_with(&KaplanMeier::fit(&xs), &KaplanMeier::fit(&ys), pairs)
}

/// [`complete_pairs`] against caller-supplied KM curves — for callers
/// that pool additional marginal observations into the fits (e.g.
/// `online::OnlineAdapter`, whose pair window alone under-represents
/// deep primary events because stragglers are nearly always retracted).
pub fn complete_pairs_with(
    km_x: &KaplanMeier,
    km_y: &KaplanMeier,
    pairs: &[(Obs, Obs)],
) -> Vec<(f64, f64)> {
    pairs
        .iter()
        .map(|&(x, y)| {
            let cx = match x {
                Obs::Exact(v) => v,
                Obs::Censored(lb) => km_x.mean_beyond(lb),
            };
            let cy = match y {
                Obs::Exact(v) => v,
                Obs::Censored(lb) => km_y.mean_beyond(lb),
            };
            (cx, cy)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use distributions::{Exponential, Sample};
    use rand::Rng;

    #[test]
    fn uncensored_survival_matches_ecdf() {
        let obs: Vec<Obs> = (1..=10).map(|i| Obs::Exact(f64::from(i))).collect();
        let km = KaplanMeier::fit(&obs);
        // With no censoring KM is exactly the empirical survival.
        assert_eq!(km.survival(0.5), 1.0);
        assert!((km.survival(5.0) - 0.5).abs() < 1e-12);
        assert_eq!(km.survival(10.0), 0.0);
        assert_eq!(km.num_events(), 10);
    }

    #[test]
    fn uncensored_mean_beyond_is_conditional_sample_mean() {
        let obs: Vec<Obs> = (1..=10).map(|i| Obs::Exact(f64::from(i))).collect();
        let km = KaplanMeier::fit(&obs);
        // E[T | T > 6] over {7,8,9,10} = 8.5.
        assert!((km.mean_beyond(6.0) - 8.5).abs() < 1e-9);
        // E[T | T > 0] = overall mean 5.5.
        assert!((km.mean_beyond(0.0) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn all_censored_returns_bound() {
        let obs = vec![Obs::Censored(1.0), Obs::Censored(2.0)];
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.survival(10.0), 1.0);
        assert_eq!(km.num_events(), 0);
        assert_eq!(km.mean_beyond(1.5), 1.5);
    }

    #[test]
    fn bound_past_last_event_returns_bound() {
        let obs = vec![Obs::Exact(1.0), Obs::Exact(2.0)];
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.mean_beyond(5.0), 5.0);
    }

    #[test]
    fn hand_worked_product_limit() {
        // Classic textbook case: events at 1, 3; censored at 2.
        // S(1) = 1 - 1/3 = 2/3. At t=3, at-risk = 1 (the censored-at-2
        // subject has left): S(3) = 2/3 * (1 - 1/1) = 0.
        let obs = vec![Obs::Exact(1.0), Obs::Censored(2.0), Obs::Exact(3.0)];
        let km = KaplanMeier::fit(&obs);
        assert!((km.survival(1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((km.survival(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(km.survival(3.0), 0.0);
    }

    #[test]
    fn km_recovers_exponential_survival_under_censoring() {
        // T ~ Exp(1), independently censored at C ~ Exp(0.5) (heavy:
        // ~1/3 of observations censored). KM should still track the
        // true survival e^{-t} in the body.
        let mut rng = seeded(42);
        let t_dist = Exponential::new(1.0);
        let c_dist = Exponential::new(0.5);
        let obs: Vec<Obs> = (0..40_000)
            .map(|_| {
                let t = t_dist.sample(&mut rng);
                let c = c_dist.sample(&mut rng);
                if t <= c {
                    Obs::Exact(t)
                } else {
                    Obs::Censored(c)
                }
            })
            .collect();
        let censored = obs.iter().filter(|o| o.is_censored()).count();
        assert!(censored > 10_000, "want heavy censoring, got {censored}");
        let km = KaplanMeier::fit(&obs);
        for t in [0.25f64, 0.5, 1.0, 1.5, 2.0] {
            let want = (-t).exp();
            let got = km.survival(t);
            assert!((got - want).abs() < 0.02, "S({t}): km={got} true={want}");
        }
    }

    #[test]
    fn km_mean_beyond_matches_memorylessness() {
        // For Exp(1), E[T | T > lb] = lb + 1 for any lb — the sharpest
        // check of the conditional-mean integration (up to truncation
        // at the last event, small at this sample size).
        let mut rng = seeded(43);
        let t_dist = Exponential::new(1.0);
        let c_dist = Exponential::new(0.4);
        let obs: Vec<Obs> = (0..60_000)
            .map(|_| {
                let t = t_dist.sample(&mut rng);
                let c = c_dist.sample(&mut rng);
                if t <= c {
                    Obs::Exact(t)
                } else {
                    Obs::Censored(c)
                }
            })
            .collect();
        let km = KaplanMeier::fit(&obs);
        for lb in [0.0, 0.5, 1.0, 2.0] {
            let got = km.mean_beyond(lb);
            let want = lb + 1.0;
            assert!(
                (got - want).abs() < 0.15,
                "E[T|T>{lb}]: km={got} true={want}"
            );
        }
    }

    #[test]
    fn complete_pairs_preserves_exact_and_bounds_censored() {
        let mut rng = seeded(44);
        let d = Exponential::new(1.0);
        let pairs: Vec<(Obs, Obs)> = (0..5_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                let y = d.sample(&mut rng);
                let ox = Obs::Exact(x);
                let oy = if rng.gen::<f64>() < 0.5 {
                    Obs::Censored(0.5 * y)
                } else {
                    Obs::Exact(y)
                };
                (ox, oy)
            })
            .collect();
        let completed = complete_pairs(&pairs);
        assert_eq!(completed.len(), pairs.len());
        for (orig, comp) in pairs.iter().zip(&completed) {
            assert_eq!(orig.0.value(), comp.0, "exact side untouched");
            match orig.1 {
                Obs::Exact(v) => assert_eq!(v, comp.1),
                Obs::Censored(lb) => assert!(comp.1 >= lb, "imputation below bound"),
            }
        }
    }

    #[test]
    fn complete_pairs_imputation_is_unbiased_on_exponentials() {
        // Censor the reissue side whenever it exceeds the primary (the
        // raced-hedge pattern: the loser is retracted when the winner
        // finishes). The completed Y mean should be close to the true
        // E[Y] = 1 despite ~50% informative censoring.
        let mut rng = seeded(45);
        let d = Exponential::new(1.0);
        let pairs: Vec<(Obs, Obs)> = (0..40_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                let y = d.sample(&mut rng);
                if y > x {
                    (Obs::Exact(x), Obs::Censored(x))
                } else {
                    (Obs::Exact(x), Obs::Exact(y))
                }
            })
            .collect();
        let completed = complete_pairs(&pairs);
        let mean_y = completed.iter().map(|p| p.1).sum::<f64>() / completed.len() as f64;
        assert!(
            (mean_y - 1.0).abs() < 0.1,
            "completed E[Y]={mean_y}, want ≈ 1"
        );
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_observation_panics() {
        let _ = KaplanMeier::fit(&[Obs::Exact(f64::NAN)]);
    }
}
