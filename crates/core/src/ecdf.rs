//! The paper's `DiscreteCDF`: a strict-`<` empirical CDF over samples.

use distributions::Cdf;

/// An empirical CDF over response-time samples.
///
/// Implements the paper's `DiscreteCDF(R, t) = |{x ∈ R : x < t}| / |R|`
/// (Figure 1, line 21) — note the *strict* inequality, which the whole
/// `ComputeOptimalSingleR` pseudocode is written against. The
/// complementary helpers keep the same convention:
///
/// * [`Ecdf::cdf_strict`]   = `Pr(X < t)`  (the paper's `DiscreteCDF`)
/// * [`Ecdf::sf_weak`]      = `Pr(X ≥ t)`  (`1 − DiscreteCDF`)
/// * [`Cdf::cdf`] (trait)   = `Pr(X ≤ t)`  (conventional weak CDF, for
///   interop with analytic distributions)
///
/// For continuous data the two conventions agree almost surely; for
/// logs with coarse timestamps they differ at tie points and the strict
/// convention must be used inside the optimizer to reproduce the paper.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF; sorts the samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains NaN.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Ecdf needs at least one sample");
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "Ecdf samples must not contain NaN"
        );
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Builds from already-sorted samples without re-sorting.
    ///
    /// # Panics
    /// Panics if the input is empty or not sorted.
    pub fn from_sorted(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "Ecdf needs at least one sample");
        assert!(
            samples.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted input must be non-decreasing"
        );
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction requires ≥ 1 sample).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// `Pr(X < t)` — the paper's `DiscreteCDF`.
    pub fn cdf_strict(&self, t: f64) -> f64 {
        self.sorted.partition_point(|&x| x < t) as f64 / self.sorted.len() as f64
    }

    /// `Pr(X ≥ t) = 1 − DiscreteCDF(t)`.
    pub fn sf_weak(&self, t: f64) -> f64 {
        1.0 - self.cdf_strict(t)
    }

    /// Nearest-rank `p`-quantile.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        let n = self.sorted.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[rank]
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

impl Cdf for Ecdf {
    /// Weak-inequality CDF `Pr(X ≤ t)` for interop with analytic
    /// distributions; the optimizer uses [`Ecdf::cdf_strict`] instead.
    fn cdf(&self, t: f64) -> f64 {
        self.sorted.partition_point(|&x| x <= t) as f64 / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strict_vs_weak_on_ties() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.cdf_strict(2.0), 0.25); // only 1.0 is < 2.0
        assert_eq!(e.cdf(2.0), 0.75); // 1.0 and both 2.0s are ≤ 2.0
        assert_eq!(e.sf_weak(2.0), 0.75); // 2.0, 2.0, 3.0 are ≥ 2.0
    }

    #[test]
    fn from_sorted_accepts_sorted() {
        let e = Ecdf::from_sorted(vec![1.0, 1.0, 4.0]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_sorted_rejects_unsorted() {
        let _ = Ecdf::from_sorted(vec![2.0, 1.0]);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(e.quantile(0.95), 95.0);
        assert_eq!(e.quantile(0.5), 50.0);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 100.0);
        assert!((e.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        let e = Ecdf::new(vec![5.0]);
        assert_eq!(e.cdf_strict(f64::NEG_INFINITY), 0.0);
        assert_eq!(e.cdf_strict(f64::INFINITY), 1.0);
        assert_eq!(e.cdf_strict(5.0), 0.0);
        assert_eq!(e.cdf_strict(5.0 + 1e-9), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_panics() {
        let _ = Ecdf::new(vec![]);
    }

    proptest! {
        #[test]
        fn cdf_monotone(
            vals in proptest::collection::vec(-1e3f64..1e3, 1..200),
            a in -1.1e3f64..1.1e3,
            b in -1.1e3f64..1.1e3,
        ) {
            let e = Ecdf::new(vals);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.cdf_strict(lo) <= e.cdf_strict(hi));
            prop_assert!(e.cdf(lo) <= e.cdf(hi));
            prop_assert!(e.cdf_strict(lo) <= e.cdf(lo));
        }

        #[test]
        fn quantile_is_inverse(
            vals in proptest::collection::vec(-1e3f64..1e3, 1..200),
            p in 0.01f64..1.0,
        ) {
            let e = Ecdf::new(vals);
            let q = e.quantile(p);
            // At least p of mass at or below q, per nearest-rank.
            prop_assert!(e.cdf(q) + 1e-12 >= p);
            // And removing q's tie-run drops below p.
            prop_assert!(e.cdf_strict(q) < p + 1e-12);
        }
    }
}
