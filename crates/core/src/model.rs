//! The analytical model of §2–§3: success probabilities and budgets of
//! reissue policies over abstract response-time distributions.
//!
//! These functions operate in the paper's simplified model — static
//! response-time distributions, no queueing feedback, independence
//! between the primary response `X` and reissue response `Y` — and are
//! the ground truth the optimizer and the optimality theorems are tested
//! against.

use crate::policy::ReissuePolicy;
use distributions::Cdf;

/// `Pr(Q ≤ t)` — the probability that a query completes by `t` under
/// `policy`, per Equations (1), (3) and (8) of the paper.
///
/// `x` is the response-time distribution of the primary request, `y`
/// that of a reissue request (measured from *its own* dispatch).
/// Response times of distinct requests are treated as independent; for
/// correlated workloads use the data-driven optimizer instead.
///
/// For MultipleR with stages `(d₁,q₁),…,(dₙ,qₙ)` the success term of
/// stage `i` generalizes Equation (10):
///
/// ```text
/// Gᵢ = qᵢ · Pr(X > t) · Πⱼ<ᵢ (1 − qⱼ·Pr(Y ≤ t−dⱼ)) · Pr(Y ≤ t−dᵢ)
/// ```
pub fn success_probability(policy: &ReissuePolicy, x: &impl Cdf, y: &impl Cdf, t: f64) -> f64 {
    let px = x.cdf(t);
    let mut success = px;
    let mut none_of_earlier_helped = 1.0;
    for s in policy.stages() {
        let py = if t >= s.delay {
            y.cdf(t - s.delay)
        } else {
            0.0
        };
        success += s.prob * (1.0 - px) * none_of_earlier_helped * py;
        none_of_earlier_helped *= 1.0 - s.prob * py;
    }
    success.clamp(0.0, 1.0)
}

/// Expected reissue rate (requests actually sent per query) of `policy`
/// — Equations (2), (4) and the general form behind Inequality (15).
///
/// Stage `i` issues a request iff the query is still incomplete at `dᵢ`
/// and its coin lands heads:
///
/// ```text
/// E[M]/N = Σᵢ qᵢ · Pr(X > dᵢ) · Πⱼ<ᵢ (1 − qⱼ·Pr(Y ≤ dᵢ−dⱼ))
/// ```
pub fn expected_budget(policy: &ReissuePolicy, x: &impl Cdf, y: &impl Cdf) -> f64 {
    let stages = policy.stages();
    let mut total = 0.0;
    for (i, s) in stages.iter().enumerate() {
        let mut incomplete = x.sf(s.delay);
        for earlier in &stages[..i] {
            let py = if s.delay >= earlier.delay {
                y.cdf(s.delay - earlier.delay)
            } else {
                0.0
            };
            incomplete *= 1.0 - earlier.prob * py;
        }
        total += s.prob * incomplete;
    }
    total
}

/// The `k`-th percentile response time achieved by `policy`
/// (the smallest `t` with `Pr(Q ≤ t) ≥ k`), found by bisection.
///
/// `hi` must satisfy `Pr(Q ≤ hi) ≥ k`; pass a generous upper bound
/// (e.g. the no-reissue `k`-quantile). Bisection runs until the bracket
/// is below `tol`.
pub fn policy_quantile(
    policy: &ReissuePolicy,
    x: &impl Cdf,
    y: &impl Cdf,
    k: f64,
    hi: f64,
    tol: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&k), "percentile k must be in [0,1)");
    let mut lo = 0.0;
    let mut hi = hi;
    debug_assert!(success_probability(policy, x, y, hi) >= k);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if success_probability(policy, x, y, mid) >= k {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Brute-force grid search for the optimal SingleR policy in the
/// analytical model: minimizes the `k`-quantile subject to
/// `expected_budget ≤ budget`, scanning `grid` candidate delays in
/// `[0, d_max]`. Used to validate both the data-driven optimizer and
/// Theorem 3.1/3.2; `O(grid²)` — test-scale only.
pub fn optimal_single_r_grid(
    x: &impl Cdf,
    y: &impl Cdf,
    k: f64,
    budget: f64,
    d_max: f64,
    grid: usize,
) -> (ReissuePolicy, f64) {
    let mut best: Option<(ReissuePolicy, f64)> = None;
    let hi0 = bracket_quantile(x, k, d_max);
    for i in 0..=grid {
        let d = d_max * i as f64 / grid as f64;
        let q = (budget / x.sf(d).max(1e-12)).min(1.0);
        let p = ReissuePolicy::single_r(d, q);
        debug_assert!(expected_budget(&p, x, y) <= budget + 1e-9);
        let t = policy_quantile(&p, x, y, k, hi0, 1e-6 * hi0.max(1.0));
        if best.as_ref().is_none_or(|b| t < b.1) {
            best = Some((p, t));
        }
    }
    best.expect("grid search needs at least one candidate")
}

/// Brute-force grid search over DoubleR policies with budget ≤ `budget`.
///
/// For each delay pair `(d₁, d₂)` and each `q₁` fraction of the budget,
/// `q₂` is set to exhaust the remaining budget per Inequality (16).
/// Returns the best policy and its `k`-quantile. `O(grid³)` — test-scale
/// only.
pub fn optimal_double_r_grid(
    x: &impl Cdf,
    y: &impl Cdf,
    k: f64,
    budget: f64,
    d_max: f64,
    grid: usize,
) -> (ReissuePolicy, f64) {
    let hi0 = bracket_quantile(x, k, d_max);
    let tol = 1e-6 * hi0.max(1.0);
    let mut best: Option<(ReissuePolicy, f64)> = None;
    for i in 0..=grid {
        let d1 = d_max * i as f64 / grid as f64;
        for j in i..=grid {
            let d2 = d_max * j as f64 / grid as f64;
            for l in 0..=grid {
                // q1 consumes a fraction l/grid of the budget.
                let q1 = ((budget * l as f64 / grid as f64) / x.sf(d1).max(1e-12)).min(1.0);
                let spent1 = q1 * x.sf(d1);
                // Inequality (16): q2 exhausts the remainder.
                let denom = x.sf(d2).max(1e-12) * (1.0 - q1 * y.cdf(d2 - d1));
                let q2 = ((budget - spent1) / denom.max(1e-12)).clamp(0.0, 1.0);
                let p = ReissuePolicy::double_r(d1, q1, d2, q2);
                if expected_budget(&p, x, y) > budget + 1e-9 {
                    continue;
                }
                let t = policy_quantile(&p, x, y, k, hi0, tol);
                if best.as_ref().is_none_or(|b| t < b.1) {
                    best = Some((p, t));
                }
            }
        }
    }
    best.expect("grid search needs at least one candidate")
}

/// An upper bound on any policy's `k`-quantile: the no-reissue quantile,
/// found by doubling out from `d_max`.
fn bracket_quantile(x: &impl Cdf, k: f64, d_max: f64) -> f64 {
    let mut hi = d_max.max(1.0);
    while x.cdf(hi) < k {
        hi *= 2.0;
        assert!(hi.is_finite(), "failed to bracket quantile");
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::{Dist, Exponential, Pareto};

    const K: f64 = 0.95;

    #[test]
    fn no_policy_matches_marginal() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        for t in [0.1, 0.5, 1.0, 3.0] {
            assert!(
                (success_probability(&ReissuePolicy::None, &x, &y, t) - x.cdf(t)).abs() < 1e-12
            );
        }
        assert_eq!(expected_budget(&ReissuePolicy::None, &x, &y), 0.0);
    }

    #[test]
    fn single_d_equation_1() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(2.0);
        let d = 0.7;
        let p = ReissuePolicy::single_d(d);
        for t in [0.8, 1.5, 3.0] {
            let want = x.cdf(t) + x.sf(t) * y.cdf(t - d);
            assert!((success_probability(&p, &x, &y, t) - want).abs() < 1e-12);
        }
        // Equation (2): B = Pr(X > d).
        assert!((expected_budget(&p, &x, &y) - x.sf(d)).abs() < 1e-12);
    }

    #[test]
    fn single_r_equation_3_and_4() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        let (d, q) = (0.5, 0.3);
        let p = ReissuePolicy::single_r(d, q);
        for t in [0.6, 1.0, 2.0] {
            let want = x.cdf(t) + q * x.sf(t) * y.cdf(t - d);
            assert!((success_probability(&p, &x, &y, t) - want).abs() < 1e-12);
        }
        assert!((expected_budget(&p, &x, &y) - q * x.sf(d)).abs() < 1e-12);
    }

    #[test]
    fn double_r_equation_8() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        let (d1, q1, d2, q2) = (0.2, 0.4, 0.9, 0.6);
        let p = ReissuePolicy::double_r(d1, q1, d2, q2);
        for t in [1.0, 1.8, 4.0] {
            let g1 = q1 * x.sf(t) * y.cdf(t - d1);
            let g2 = q2 * (1.0 - q1 * y.cdf(t - d1)) * x.sf(t) * y.cdf(t - d2);
            let want = x.cdf(t) + g1 + g2;
            assert!(
                (success_probability(&p, &x, &y, t) - want).abs() < 1e-12,
                "t={t}"
            );
        }
        // Budget matches Inequality (15)'s left side.
        let want_b = q1 * x.sf(d1) + q2 * x.sf(d2) * (1.0 - q1 * y.cdf(d2 - d1));
        assert!((expected_budget(&p, &x, &y) - want_b).abs() < 1e-12);
    }

    #[test]
    fn reissue_before_delay_cannot_help() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        let p = ReissuePolicy::single_r(5.0, 1.0);
        // For t < d the reissue has not happened yet.
        assert!((success_probability(&p, &x, &y, 3.0) - x.cdf(3.0)).abs() < 1e-12);
    }

    #[test]
    fn success_monotone_in_t() {
        let x = Pareto::paper_default();
        let y = Pareto::paper_default();
        let p = ReissuePolicy::single_r(4.0, 0.5);
        let mut last = 0.0;
        for i in 1..200 {
            let t = i as f64 * 0.5;
            let s = success_probability(&p, &x, &y, t);
            assert!(s + 1e-12 >= last, "not monotone at t={t}");
            last = s;
        }
    }

    #[test]
    fn policy_quantile_improves_tail() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        let base = x.quantile(K);
        let hedged = policy_quantile(&ReissuePolicy::immediate(), &x, &y, K, base, 1e-9);
        // Immediate duplicate of Exp(1): P95 of min of two ~ half.
        assert!(hedged < base * 0.6, "hedged={hedged} base={base}");
    }

    #[test]
    fn grid_single_r_beats_single_d_at_small_budget() {
        // k=0.95 with budget 0.03 < 1-k: SingleD provably can't help.
        let x = Pareto::paper_default();
        let y = Pareto::paper_default();
        let base = x.quantile(K);
        let (p, t) = optimal_single_r_grid(&x, &y, K, 0.03, base * 2.0, 60);
        assert!(t < base, "SingleR must improve: t={t} base={base}");
        match p {
            ReissuePolicy::SingleR { prob, .. } => assert!(prob < 1.0),
            _ => panic!("expected SingleR"),
        }
    }

    #[test]
    fn budget_never_exceeded_by_grid_policies() {
        let x = Exponential::new(0.1);
        let y = Exponential::new(0.1);
        for budget in [0.01, 0.05, 0.2, 0.5] {
            let (p, _) = optimal_single_r_grid(&x, &y, K, budget, 60.0, 40);
            assert!(expected_budget(&p, &x, &y) <= budget + 1e-9);
        }
    }

    /// Numeric validation of Theorem 3.1: the optimal SingleR matches
    /// the optimal DoubleR at equal budget (up to grid resolution).
    #[test]
    fn theorem_3_1_single_matches_double() {
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        for budget in [0.02, 0.05, 0.10, 0.25] {
            let d_max = x.quantile(0.999);
            let (_, t_single) = optimal_single_r_grid(&x, &y, K, budget, d_max, 48);
            let (_, t_double) = optimal_double_r_grid(&x, &y, K, budget, d_max, 16);
            // DoubleR may never beat SingleR by more than grid noise.
            assert!(
                t_double >= t_single - 0.05 * t_single,
                "budget={budget}: double {t_double} < single {t_single}"
            );
        }
    }

    #[test]
    fn theorem_3_1_heavy_tail() {
        let x = Pareto::paper_default();
        let y = Pareto::paper_default();
        let budget = 0.1;
        let d_max = x.quantile(0.995);
        let (_, t_single) = optimal_single_r_grid(&x, &y, K, budget, d_max, 48);
        let (_, t_double) = optimal_double_r_grid(&x, &y, K, budget, d_max, 16);
        assert!(
            t_double >= t_single - 0.05 * t_single,
            "double {t_double} < single {t_single}"
        );
    }
}
