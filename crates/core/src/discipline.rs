//! Queue disciplines shared by the cluster simulator and the TCP
//! serving path.
//!
//! The paper's reissue policies decide *when a second copy of a
//! request enters some server's queue*; the queue discipline decides
//! *which queued request runs next*. Both knobs target the same tail
//! (Yu & Scully show the discipline alone reshapes the light-tailed
//! M/G/1 tail), so this module defines one [`Discipline`] type and one
//! [`WaitQueue`] implementation that the discrete-event simulator
//! (`simulator::cluster`) and the real server (`hedge::TcpServer`)
//! both execute — an A/B of cancellation style × discipline × reissue
//! policy measures the interaction on identical scheduling semantics.
//!
//! The queue is generic over [`QueueItem`]: the simulator queues its
//! `QueuedRequest` (service time in simulated ms), the TCP server
//! queues scheduler entries (estimated cost from
//! `kvstore::Backend::estimate_cost`, wall-clock enqueue stamps in
//! ms). `pop` takes the caller's *now* so the aging disciplines
//! ([`Discipline::ShortestBurn`]) can decay priorities without the
//! queue owning a clock.

use std::collections::{BTreeMap, VecDeque};

/// How a server orders its wait queue.
///
/// `RoundRobin`'s per-connection sub-queues model the Redis
/// event-loop: one sweep serves at most one request per connection, so
/// a pipelining-heavy client cannot starve the others. The remaining
/// variants order one central queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Discipline {
    /// Strict arrival order.
    Fifo,
    /// Primaries before reissues; FIFO within each class. A reissue is
    /// speculative work, so under backlog it yields to first copies.
    PrioritizedFifo,
    /// Primaries before reissues; LIFO within the reissue class (the
    /// freshest speculation is the likeliest to still matter).
    PrioritizedLifo,
    /// Per-connection FIFO sub-queues served cyclically.
    ///
    /// `connections == 0` means *dynamic*: sub-queues are keyed by the
    /// item's raw connection id and created on first use (the TCP
    /// server's accept-order ids). A non-zero count folds ids modulo
    /// `connections` into a fixed ring, matching the simulator's
    /// pre-assigned connection model.
    RoundRobin {
        /// Number of fixed sub-queues, or 0 for dynamic ids.
        connections: usize,
    },
    /// Shortest-job-first on the *estimated* cost: the cheapest queued
    /// request runs next, FIFO among ties. Non-preemptive, so a
    /// monster that already started still blocks, but one that is
    /// still queued no longer delays the cheap traffic behind it.
    CostPriority,
    /// SRPT-ish cost priority with aging: the effective priority of a
    /// queued item is `cost − boost · wait`, so an expensive request
    /// overtaken by cheap arrivals gains priority as it waits.
    ///
    /// With `boost > 0` the starvation bound is explicit: after
    /// waiting `cost / boost` time units, an item outranks any
    /// zero-cost newcomer and must be served before it.
    ShortestBurn {
        /// Priority units forgiven per unit of waiting time (cost
        /// units per ms in both the simulator and the TCP server).
        boost: f64,
    },
}

/// What a [`WaitQueue`] needs to know about a queued request.
pub trait QueueItem {
    /// Estimated service cost, in whatever unit the host measures
    /// ([`Discipline::CostPriority`] and [`Discipline::ShortestBurn`]
    /// compare these).
    fn cost(&self) -> f64;
    /// Enqueue timestamp on the host's clock (ms); `pop` receives
    /// *now* on the same clock.
    fn enqueued_at(&self) -> f64;
    /// Whether the item is a speculative reissue (the `Prioritized*`
    /// class split).
    fn is_reissue(&self) -> bool;
    /// Connection id for [`Discipline::RoundRobin`] sub-queues.
    fn connection(&self) -> usize;
}

/// A server wait queue ordered by one [`Discipline`].
#[derive(Clone, Debug)]
pub enum WaitQueue<T> {
    /// Single FIFO queue.
    Fifo(VecDeque<T>),
    /// Primary-class queue + reissue-class queue; `lifo` controls the
    /// reissue class's pop end.
    Prioritized {
        /// Queued primaries, FIFO.
        primary: VecDeque<T>,
        /// Queued reissues.
        reissue: VecDeque<T>,
        /// Pop reissues newest-first when set.
        lifo: bool,
    },
    /// Cyclic service over per-connection FIFO sub-queues.
    RoundRobin {
        /// Sub-queues keyed by (possibly folded) connection id.
        queues: BTreeMap<usize, VecDeque<T>>,
        /// Next id to serve: the smallest id ≥ `cursor`, wrapping.
        cursor: usize,
        /// Fixed ring size, or 0 for dynamic ids.
        connections: usize,
        /// Total queued items across sub-queues.
        len: usize,
    },
    /// Unordered pool; `pop` scans for the minimum effective priority.
    Priority {
        /// Queued items, scanned linearly on pop.
        items: Vec<T>,
        /// Aging rate (0 for plain cost priority).
        boost: f64,
    },
}

impl<T: QueueItem> WaitQueue<T> {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: Discipline) -> Self {
        match discipline {
            Discipline::Fifo => WaitQueue::Fifo(VecDeque::new()),
            Discipline::PrioritizedFifo => WaitQueue::Prioritized {
                primary: VecDeque::new(),
                reissue: VecDeque::new(),
                lifo: false,
            },
            Discipline::PrioritizedLifo => WaitQueue::Prioritized {
                primary: VecDeque::new(),
                reissue: VecDeque::new(),
                lifo: true,
            },
            Discipline::RoundRobin { connections } => WaitQueue::RoundRobin {
                queues: BTreeMap::new(),
                cursor: 0,
                connections,
                len: 0,
            },
            Discipline::CostPriority => WaitQueue::Priority {
                items: Vec::new(),
                boost: 0.0,
            },
            Discipline::ShortestBurn { boost } => WaitQueue::Priority {
                items: Vec::new(),
                boost: boost.max(0.0),
            },
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        match self {
            WaitQueue::Fifo(q) => q.len(),
            WaitQueue::Prioritized {
                primary, reissue, ..
            } => primary.len() + reissue.len(),
            WaitQueue::RoundRobin { len, .. } => *len,
            WaitQueue::Priority { items, .. } => items.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues an item.
    pub fn push(&mut self, item: T) {
        match self {
            WaitQueue::Fifo(q) => q.push_back(item),
            WaitQueue::Prioritized {
                primary, reissue, ..
            } => {
                if item.is_reissue() {
                    reissue.push_back(item);
                } else {
                    primary.push_back(item);
                }
            }
            WaitQueue::RoundRobin {
                queues,
                connections,
                len,
                ..
            } => {
                let id = fold_conn(item.connection(), *connections);
                queues.entry(id).or_default().push_back(item);
                *len += 1;
            }
            WaitQueue::Priority { items, .. } => items.push(item),
        }
    }

    /// Dequeues the next item under the discipline. `now` is the
    /// caller's clock in the same unit as [`QueueItem::enqueued_at`]
    /// (only the aging disciplines read it).
    pub fn pop(&mut self, now: f64) -> Option<T> {
        match self {
            WaitQueue::Fifo(q) => q.pop_front(),
            WaitQueue::Prioritized {
                primary,
                reissue,
                lifo,
            } => primary.pop_front().or_else(|| {
                if *lifo {
                    reissue.pop_back()
                } else {
                    reissue.pop_front()
                }
            }),
            WaitQueue::RoundRobin {
                queues,
                cursor,
                len,
                ..
            } => {
                // The smallest id cyclically ≥ cursor with work.
                let id = queues
                    .range(*cursor..)
                    .chain(queues.range(..*cursor))
                    .find(|(_, q)| !q.is_empty())
                    .map(|(&id, _)| id)?;
                let item = queues.get_mut(&id).and_then(|q| q.pop_front());
                if item.is_some() {
                    *len -= 1;
                    *cursor = id + 1;
                }
                item
            }
            WaitQueue::Priority { items, boost } => {
                let best = items
                    .iter()
                    .enumerate()
                    .map(|(i, it)| {
                        let prio = it.cost() - *boost * (now - it.enqueued_at()).max(0.0);
                        (i, prio, it.enqueued_at())
                    })
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.2.total_cmp(&b.2)))?;
                Some(items.remove(best.0))
            }
        }
    }

    /// Removes and returns the first queued item matching `pred`
    /// (retraction of a cancelled tied request). Returns `None` when
    /// no queued item matches — e.g. the target already dequeued.
    pub fn take(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        fn take_deque<T>(q: &mut VecDeque<T>, pred: &mut impl FnMut(&T) -> bool) -> Option<T> {
            let i = q.iter().position(&mut *pred)?;
            q.remove(i)
        }
        match self {
            WaitQueue::Fifo(q) => take_deque(q, &mut pred),
            WaitQueue::Prioritized {
                primary, reissue, ..
            } => take_deque(primary, &mut pred).or_else(|| take_deque(reissue, &mut pred)),
            WaitQueue::RoundRobin { queues, len, .. } => {
                let found = queues.values_mut().find_map(|q| take_deque(q, &mut pred));
                if found.is_some() {
                    *len -= 1;
                }
                found
            }
            WaitQueue::Priority { items, .. } => {
                let i = items.iter().position(pred)?;
                Some(items.remove(i))
            }
        }
    }
}

/// Folds a raw connection id into a fixed ring, or passes it through
/// when the ring is dynamic (`connections == 0`).
fn fold_conn(id: usize, connections: usize) -> usize {
    if connections == 0 {
        id
    } else {
        id % connections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Item {
        id: u32,
        cost: f64,
        at: f64,
        reissue: bool,
        conn: usize,
    }

    impl QueueItem for Item {
        fn cost(&self) -> f64 {
            self.cost
        }
        fn enqueued_at(&self) -> f64 {
            self.at
        }
        fn is_reissue(&self) -> bool {
            self.reissue
        }
        fn connection(&self) -> usize {
            self.conn
        }
    }

    fn item(id: u32, cost: f64, at: f64, reissue: bool, conn: usize) -> Item {
        Item {
            id,
            cost,
            at,
            reissue,
            conn,
        }
    }

    fn drain_ids(q: &mut WaitQueue<Item>, now: f64) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(it) = q.pop(now) {
            out.push(it.id);
        }
        out
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = WaitQueue::new(Discipline::Fifo);
        for i in 0..4 {
            q.push(item(i, (10 - i) as f64, i as f64, i % 2 == 1, 0));
        }
        assert_eq!(q.len(), 4);
        assert_eq!(drain_ids(&mut q, 10.0), vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn prioritized_fifo_serves_primaries_first() {
        let mut q = WaitQueue::new(Discipline::PrioritizedFifo);
        q.push(item(0, 1.0, 0.0, true, 0));
        q.push(item(1, 1.0, 1.0, false, 0));
        q.push(item(2, 1.0, 2.0, true, 0));
        q.push(item(3, 1.0, 3.0, false, 0));
        assert_eq!(drain_ids(&mut q, 10.0), vec![1, 3, 0, 2]);
    }

    #[test]
    fn prioritized_lifo_pops_freshest_reissue() {
        let mut q = WaitQueue::new(Discipline::PrioritizedLifo);
        q.push(item(0, 1.0, 0.0, true, 0));
        q.push(item(1, 1.0, 1.0, true, 0));
        q.push(item(2, 1.0, 2.0, false, 0));
        assert_eq!(drain_ids(&mut q, 10.0), vec![2, 1, 0]);
    }

    #[test]
    fn round_robin_cycles_fixed_connections() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 3 });
        // Two items on conn 0, one on conn 2; conn 1 idle.
        q.push(item(0, 1.0, 0.0, false, 0));
        q.push(item(1, 1.0, 1.0, false, 0));
        q.push(item(2, 1.0, 2.0, false, 2));
        // Folding: conn 5 % 3 == 2 shares conn 2's sub-queue.
        q.push(item(3, 1.0, 3.0, false, 5));
        assert_eq!(drain_ids(&mut q, 10.0), vec![0, 2, 1, 3]);
    }

    #[test]
    fn round_robin_dynamic_ids_cycle_in_id_order() {
        let mut q = WaitQueue::new(Discipline::RoundRobin { connections: 0 });
        q.push(item(0, 1.0, 0.0, false, 17));
        q.push(item(1, 1.0, 1.0, false, 4));
        q.push(item(2, 1.0, 2.0, false, 17));
        q.push(item(3, 1.0, 3.0, false, 900));
        // Cursor starts at 0: serve 4, then 17, then 900, then wrap
        // back to 17's second item.
        assert_eq!(drain_ids(&mut q, 10.0), vec![1, 0, 3, 2]);
    }

    #[test]
    fn cost_priority_is_sjf_with_fifo_ties() {
        let mut q = WaitQueue::new(Discipline::CostPriority);
        q.push(item(0, 5.0, 0.0, false, 0));
        q.push(item(1, 1.0, 1.0, false, 0));
        q.push(item(2, 1.0, 2.0, false, 0));
        q.push(item(3, 3.0, 3.0, false, 0));
        assert_eq!(drain_ids(&mut q, 10.0), vec![1, 2, 3, 0]);
    }

    #[test]
    fn shortest_burn_ages_expensive_items_past_newcomers() {
        let mut q = WaitQueue::new(Discipline::ShortestBurn { boost: 1.0 });
        // A monster enqueued at t=0 with cost 100; cheap items keep
        // arriving. Before the monster has waited 100 ms it loses to a
        // cost-1 newcomer...
        q.push(item(0, 100.0, 0.0, false, 0));
        q.push(item(1, 1.0, 50.0, false, 0));
        assert_eq!(q.pop(50.0).unwrap().id, 1);
        // ...but once its wait exceeds cost/boost it outranks even a
        // zero-cost arrival: the starvation bound.
        q.push(item(2, 0.0, 101.0, false, 0));
        assert_eq!(q.pop(101.0).unwrap().id, 0);
        assert_eq!(q.pop(101.0).unwrap().id, 2);
    }

    #[test]
    fn starvation_bound_holds_under_continuous_cheap_arrivals() {
        // cost/boost = 40/2 = 20 ms: with cheap cost-1 arrivals every
        // ms, the monster must be served within its bound.
        let mut q = WaitQueue::new(Discipline::ShortestBurn { boost: 2.0 });
        q.push(item(999, 40.0, 0.0, false, 0));
        let mut served_monster_at = None;
        for t in 1..60u32 {
            let now = t as f64;
            q.push(item(t, 1.0, now, false, 0));
            if let Some(it) = q.pop(now) {
                if it.id == 999 {
                    served_monster_at = Some(now);
                    break;
                }
            }
        }
        let at = served_monster_at.expect("monster starved");
        assert!(
            at <= 40.0 / 2.0 + 1.0,
            "monster served at {at} ms, past the cost/boost bound"
        );
    }

    #[test]
    fn take_retracts_only_queued_items() {
        let mut q = WaitQueue::new(Discipline::CostPriority);
        q.push(item(0, 1.0, 0.0, false, 0));
        q.push(item(1, 2.0, 1.0, true, 0));
        assert_eq!(q.take(|it| it.id == 1).unwrap().id, 1);
        assert!(q.take(|it| it.id == 1).is_none(), "already retracted");
        assert_eq!(q.len(), 1);
        // Round-robin bookkeeping survives a take.
        let mut rr = WaitQueue::new(Discipline::RoundRobin { connections: 0 });
        rr.push(item(0, 1.0, 0.0, false, 3));
        rr.push(item(1, 1.0, 1.0, false, 9));
        assert_eq!(rr.take(|it| it.id == 0).unwrap().id, 0);
        assert_eq!(rr.len(), 1);
        assert_eq!(drain_ids(&mut rr, 5.0), vec![1]);
    }
}
