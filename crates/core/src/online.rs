//! On-line policy adaptation for drifting workloads (§4.4, "varying
//! load / response-time distributions").
//!
//! Production response-time distributions move on hourly/daily cycles.
//! §4.3's batch loop re-optimizes between full runs; this module keeps
//! the policy fresh *while the system serves traffic*: response times
//! stream in, a sliding window holds the last `window` observations in
//! order-statistic treaps (so quantiles and CDF evaluations stay
//! `O(log n)` under churn), and every `reoptimize_every` completed
//! queries the SingleR parameters are recomputed from the window with
//! the same learning-rate damping as the batch loop.
//!
//! ```
//! use reissue_core::online::{OnlineAdapter, OnlineConfig};
//!
//! let mut adapter = OnlineAdapter::new(OnlineConfig {
//!     k: 0.95,
//!     budget: 0.1,
//!     window: 1_000,
//!     reoptimize_every: 500,
//!     learning_rate: 0.5,
//! });
//! // Feed observations as queries complete; consult the policy any time.
//! for i in 0..2_000u32 {
//!     adapter.observe_primary(f64::from(i % 100 + 1));
//! }
//! let policy = adapter.policy();
//! assert!(policy.budget_used <= 0.1 + 1e-9);
//! ```

use crate::optimizer::{compute_optimal_single_r, OptimalSingleR};
use rangequery::Treap;
use std::collections::VecDeque;

/// Configuration for [`OnlineAdapter`].
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Target tail percentile.
    pub k: f64,
    /// Reissue budget.
    pub budget: f64,
    /// Sliding-window size (observations retained).
    pub window: usize,
    /// Re-optimize after this many new primary observations.
    pub reoptimize_every: usize,
    /// Damping for delay updates, as in the §4.3 loop.
    pub learning_rate: f64,
}

/// Streaming SingleR policy maintenance over a sliding window.
///
/// The window lives in two [`Treap`]s (primary and reissue response
/// times) plus eviction queues, so inserts, evictions and the quantile
/// probes the optimizer needs are all logarithmic. Re-optimization
/// extracts the window as sorted vectors (`O(w)`) and runs the standard
/// `ComputeOptimalSingleR`, then moves the live delay a `learning_rate`
/// step toward the recommendation.
#[derive(Clone, Debug)]
pub struct OnlineAdapter {
    cfg: OnlineConfig,
    primary: Treap,
    primary_order: VecDeque<f64>,
    reissue: Treap,
    reissue_order: VecDeque<f64>,
    seen_since_opt: usize,
    delay: f64,
    probability: f64,
    last_opt: Option<OptimalSingleR>,
    reoptimizations: u64,
}

impl OnlineAdapter {
    /// Creates an adapter with an inactive policy (no reissues until
    /// enough data arrives).
    ///
    /// # Panics
    /// Panics on out-of-range configuration.
    pub fn new(cfg: OnlineConfig) -> Self {
        assert!((0.0..1.0).contains(&cfg.k), "k must be in [0,1)");
        assert!((0.0..=1.0).contains(&cfg.budget), "budget in [0,1]");
        assert!(cfg.window >= 16, "window too small to estimate tails");
        assert!(cfg.reoptimize_every >= 1);
        assert!(
            cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0,
            "learning rate in (0,1]"
        );
        OnlineAdapter {
            cfg,
            primary: Treap::new(0xA11CE),
            primary_order: VecDeque::with_capacity(cfg.window + 1),
            reissue: Treap::new(0xB0B),
            reissue_order: VecDeque::with_capacity(cfg.window + 1),
            seen_since_opt: 0,
            delay: 0.0,
            probability: 0.0,
            last_opt: None,
            reoptimizations: 0,
        }
    }

    /// Records a completed primary request's response time.
    pub fn observe_primary(&mut self, response: f64) {
        assert!(response.is_finite(), "response must be finite");
        self.primary.insert(response);
        self.primary_order.push_back(response);
        if self.primary_order.len() > self.cfg.window {
            let old = self.primary_order.pop_front().unwrap();
            self.primary.remove(old);
        }
        self.seen_since_opt += 1;
        if self.seen_since_opt >= self.cfg.reoptimize_every
            && self.primary_order.len() >= self.cfg.window.min(64)
        {
            self.reoptimize();
            self.seen_since_opt = 0;
        }
    }

    /// Records a completed reissue request's response time (measured
    /// from its own dispatch).
    pub fn observe_reissue(&mut self, response: f64) {
        assert!(response.is_finite(), "response must be finite");
        self.reissue.insert(response);
        self.reissue_order.push_back(response);
        if self.reissue_order.len() > self.cfg.window {
            let old = self.reissue_order.pop_front().unwrap();
            self.reissue.remove(old);
        }
    }

    fn reoptimize(&mut self) {
        let rx = self.primary.to_sorted_vec();
        // With no reissue observations yet, treat reissues as
        // exchangeable with primaries (the batch loop's fallback).
        let ry = if self.reissue.len() >= 16 {
            self.reissue.to_sorted_vec()
        } else {
            rx.clone()
        };
        let opt = compute_optimal_single_r(&rx, &ry, self.cfg.k, self.cfg.budget);
        // Damped update, as in §4.3.
        self.delay += self.cfg.learning_rate * (opt.delay - self.delay);
        let outstanding = 1.0 - self.primary.cdf(self.delay);
        self.probability = if self.cfg.budget <= 0.0 {
            0.0
        } else if outstanding > 0.0 {
            (self.cfg.budget / outstanding).min(1.0)
        } else {
            1.0
        };
        self.last_opt = Some(opt);
        self.reoptimizations += 1;
    }

    /// The current policy parameters as an [`OptimalSingleR`] record
    /// (delay/probability are the *live, damped* values; predictions
    /// come from the last re-optimization).
    pub fn policy(&self) -> OptimalSingleR {
        let outstanding = if self.primary.is_empty() {
            0.0
        } else {
            1.0 - self.primary.cdf(self.delay)
        };
        OptimalSingleR {
            delay: self.delay,
            probability: self.probability,
            outstanding_at_delay: outstanding,
            predicted_latency: self.last_opt.map_or(f64::NAN, |o| o.predicted_latency),
            budget_used: self.probability * outstanding,
            predicted_success: self.last_opt.map_or(f64::NAN, |o| o.predicted_success),
        }
    }

    /// Current window quantile of primary response times, `O(log n)`.
    pub fn window_quantile(&self, p: f64) -> Option<f64> {
        self.primary.quantile(p)
    }

    /// Number of re-optimizations performed.
    pub fn reoptimizations(&self) -> u64 {
        self.reoptimizations
    }

    /// Observations currently held in the primary window.
    pub fn window_len(&self) -> usize {
        self.primary_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use distributions::{Exponential, Sample};

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            k: 0.95,
            budget: 0.1,
            window: 2_000,
            reoptimize_every: 500,
            learning_rate: 0.5,
        }
    }

    #[test]
    fn policy_respects_budget_on_stationary_stream() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(1);
        let d = Exponential::new(1.0);
        for _ in 0..10_000 {
            a.observe_primary(d.sample(&mut rng));
        }
        let p = a.policy();
        assert!(a.reoptimizations() >= 4);
        assert!(p.budget_used <= 0.1 + 1e-9, "budget {}", p.budget_used);
        assert!(p.delay > 0.0);
        // Exp(1) at B=0.1: optimal delay sits in the body, well below
        // the P95 (≈3) — the SingleR advantage.
        assert!(p.delay < 3.0, "delay {}", p.delay);
    }

    #[test]
    fn adapts_to_distribution_shift() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(2);
        // Phase 1: fast service.
        let fast = Exponential::new(1.0);
        for _ in 0..4_000 {
            a.observe_primary(fast.sample(&mut rng));
        }
        let d_fast = a.policy().delay;
        // Phase 2: the service slows 10x; the delay must follow.
        let slow = Exponential::new(0.1);
        for _ in 0..6_000 {
            a.observe_primary(slow.sample(&mut rng));
        }
        let d_slow = a.policy().delay;
        assert!(
            d_slow > 4.0 * d_fast,
            "delay failed to track drift: {d_fast} -> {d_slow}"
        );
        // And the budget still holds under the new distribution.
        assert!(a.policy().budget_used <= 0.1 + 1e-9);
    }

    #[test]
    fn window_eviction_bounds_memory() {
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 100,
            reoptimize_every: 50,
            ..cfg()
        });
        let mut rng = seeded(3);
        let d = Exponential::new(1.0);
        for _ in 0..1_000 {
            a.observe_primary(d.sample(&mut rng));
        }
        assert_eq!(a.window_len(), 100);
        assert!(a.window_quantile(0.5).is_some());
    }

    #[test]
    fn reissue_observations_feed_optimizer() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(4);
        let d = Exponential::new(1.0);
        // Reissues are much slower than primaries here: the optimizer
        // should discount them (smaller predicted benefit).
        for _ in 0..5_000 {
            a.observe_primary(d.sample(&mut rng));
            a.observe_reissue(10.0 * d.sample(&mut rng));
        }
        let p = a.policy();
        assert!(p.budget_used <= 0.1 + 1e-9);
        assert!(p.predicted_latency.is_finite());
    }

    #[test]
    fn no_reissues_until_warmed_up() {
        let a = OnlineAdapter::new(cfg());
        let p = a.policy();
        assert_eq!(p.probability, 0.0);
        assert_eq!(a.window_len(), 0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = OnlineAdapter::new(OnlineConfig { window: 4, ..cfg() });
    }
}
