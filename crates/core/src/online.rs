//! On-line policy adaptation for drifting workloads (§4.4, "varying
//! load / response-time distributions").
//!
//! Production response-time distributions move on hourly/daily cycles.
//! §4.3's batch loop re-optimizes between full runs; this module keeps
//! the policy fresh *while the system serves traffic*: response times
//! stream in, a sliding window holds the last `window` observations in
//! order-statistic treaps (so quantiles and CDF evaluations stay
//! `O(log n)` under churn), and every `reoptimize_every` completed
//! observations the SingleR parameters are recomputed from the window
//! with the same learning-rate damping as the batch loop.
//!
//! ## Correlation-aware adaptation from censored pairs
//!
//! Two observation streams ([`OnlineAdapter::observe_primary`] /
//! [`OnlineAdapter::observe_reissue`]) can only drive the §4.1
//! *independence-model* optimizer, which overvalues hedging the
//! just-past-`d` noise band — where a correlated redraw wins nothing —
//! and spends the budget there instead of on deep stragglers. The §4.2
//! correlated optimizer needs *joint* `(primary, reissue)` samples,
//! which a serving system with tied-request cancellation censors: a
//! retracted loser's response time is known only as a lower bound.
//!
//! [`OnlineAdapter::observe_pair`] therefore accepts raced-hedge
//! outcomes with either side possibly censored; the window of pairs is
//! completed Kaplan–Meier-style (see [`crate::censored`]) at each
//! re-optimization, and once [`OnlineConfig::min_pairs`] pairs have
//! accumulated the adapter switches from
//! [`compute_optimal_single_r`] to
//! [`compute_optimal_single_r_correlated`] — falling back to the
//! independent path while the pair window is still thin.
//!
//! ## Utilization-aware damping
//!
//! Latency samples alone cannot tell a slow service from a saturated
//! one, and hedging a saturated cluster *adds* load — redundancy's
//! benefit flips sign with utilization. When [`OnlineConfig::load`] is
//! set, the adapter accepts an external utilization estimate
//! ([`OnlineAdapter::set_utilization`], typically fed from a
//! [`crate::load::LoadSignal`]) and runs the optimizer at an
//! *effective* budget `B · damping(ρ̂)` (see
//! [`crate::load::LoadShaper`]): as ρ̂ rises the reissue probability
//! shrinks and the optimal delay deepens, recovering unhedged behavior
//! at saturation. The damping is applied **twice**: once to the spend
//! target handed to the optimizer (which deepens the delay), and once
//! multiplicatively to the live probability — budget damping alone
//! cannot suppress deep-delay duplication, because past the bulk of
//! the distribution `budget / outstanding` saturates at 1 however
//! small the budget, and the rare-but-huge query a deep policy still
//! duplicates is precisely the one whose *capacity* cost (unpriced by
//! the count-based budget metric) tips a saturated cluster over.
//! Between re-optimizations `set_utilization` rescales the live
//! probability immediately, so the realized reissue rate tracks a
//! ramp without waiting out `reoptimize_every`.
//!
//! ## Regime-shift window reset
//!
//! A fixed-size window lags a step change by up to a full window of
//! mixed pre-/post-shift samples. Each re-optimization therefore runs
//! a distribution-free shift detector: if at least half of the most
//! recent 64 primary samples fall above the window's P75 (or below its
//! P25 — under a stationary stream each tail event has probability
//! 1/4, so ≥ 32 of 64 is a ≈`3e-5` false-positive), the pre-shift
//! window is discarded, the optimizer runs on the retained recent
//! samples, and the delay snaps to the recommendation (bypassing
//! learning-rate damping) — re-convergence is bounded by a couple of
//! re-optimization periods instead of a window length.
//!
//! ```
//! use reissue_core::online::{OnlineAdapter, OnlineConfig, ReissueOutcome};
//!
//! let mut adapter = OnlineAdapter::new(OnlineConfig {
//!     k: 0.95,
//!     budget: 0.1,
//!     window: 1_000,
//!     reoptimize_every: 500,
//!     learning_rate: 0.5,
//!     min_pairs: 64,
//!     load: None,
//! });
//! // Feed observations as queries complete; consult the policy any time.
//! for i in 0..2_000u32 {
//!     adapter.observe_primary(f64::from(i % 100 + 1));
//! }
//! // Raced hedges arrive as pairs; a loser cancelled in time is a
//! // censored observation (lower bound = elapsed when retracted).
//! adapter.observe_pair(42.0, ReissueOutcome::Completed(11.0));
//! adapter.observe_pair(55.0, ReissueOutcome::Censored(12.5));
//! let policy = adapter.policy();
//! assert!(policy.budget_used <= 0.1 + 1e-9);
//! ```

use crate::censored::{complete_pairs_with, KaplanMeier, Obs};
use crate::load::LoadShaper;
use crate::optimizer::{
    compute_optimal_single_r, compute_optimal_single_r_correlated, OptimalSingleR,
};
use rangequery::Treap;
use std::collections::VecDeque;

/// Recent-sample count the regime-shift detector inspects (and the
/// number of samples each marginal window retains after a reset).
const SHIFT_RECENT: usize = 64;

/// Configuration for [`OnlineAdapter`].
#[derive(Clone, Copy, Debug)]
pub struct OnlineConfig {
    /// Target tail percentile.
    pub k: f64,
    /// Reissue budget.
    pub budget: f64,
    /// Sliding-window size (observations retained per stream, and
    /// raced pairs retained in the pair window).
    pub window: usize,
    /// Re-optimize after this many new observations (primaries,
    /// reissues and pairs all count).
    pub reoptimize_every: usize,
    /// Damping for delay updates, as in the §4.3 loop.
    pub learning_rate: f64,
    /// Minimum raced pairs in the window before re-optimization
    /// switches to the §4.2 correlated optimizer. The pair window is
    /// capped at [`window`](Self::window), so any value above `window`
    /// — conventionally `usize::MAX` — pins the adapter to the
    /// independence model permanently (e.g. for A/B runs).
    pub min_pairs: usize,
    /// When set, the adapter damps its effective reissue budget by
    /// [`LoadShaper::damping`] of the utilization fed through
    /// [`OnlineAdapter::set_utilization`] — `None` (the default)
    /// keeps the adapter load-blind and bit-for-bit compatible with
    /// earlier behavior.
    pub load: Option<LoadShaper>,
}

impl Default for OnlineConfig {
    /// P99 target, 5 % budget, 2 048-observation window re-optimized
    /// every 512 observations with the §4.3 half-step, switching to the
    /// correlated optimizer after 64 raced pairs.
    fn default() -> Self {
        OnlineConfig {
            k: 0.99,
            budget: 0.05,
            window: 2_048,
            reoptimize_every: 512,
            learning_rate: 0.5,
            min_pairs: 64,
            load: None,
        }
    }
}

/// Outcome of the reissue side of a raced hedge, as fed to
/// [`OnlineAdapter::observe_pair`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReissueOutcome {
    /// The reissue completed; its exact response time (ms, measured
    /// from its own dispatch).
    Completed(f64),
    /// The reissue was retracted in time (tied-request cancel); its
    /// response time is only known to exceed this lower bound — the
    /// time it had been outstanding when the retraction confirmed.
    Censored(f64),
}

/// Streaming SingleR policy maintenance over a sliding window.
///
/// The window lives in two [`Treap`]s (primary and reissue response
/// times) plus eviction queues, so inserts, evictions and the quantile
/// probes the optimizer needs are all logarithmic; raced hedges
/// additionally land in a bounded pair window with per-side censoring.
/// Re-optimization extracts the windows as sorted vectors (`O(w)`) and
/// runs `ComputeOptimalSingleR` — the §4.2 correlated variant once
/// [`OnlineConfig::min_pairs`] censored-completed pairs are available,
/// the §4.1 independent variant before that — then moves the live delay
/// a `learning_rate` step toward the recommendation.
#[derive(Clone, Debug)]
pub struct OnlineAdapter {
    cfg: OnlineConfig,
    primary: Treap,
    primary_order: VecDeque<f64>,
    reissue: Treap,
    reissue_order: VecDeque<f64>,
    pairs: VecDeque<(Obs, Obs)>,
    censored_in_window: usize,
    seen_since_opt: usize,
    delay: f64,
    probability: f64,
    last_opt: Option<OptimalSingleR>,
    reoptimizations: u64,
    correlated_reoptimizations: u64,
    used_correlated: bool,
    /// Externally supplied utilization estimate ρ̂ (0 until fed).
    utilization: f64,
    shift_resets: u64,
}

impl OnlineAdapter {
    /// Creates an adapter with an inactive policy (no reissues until
    /// enough data arrives).
    ///
    /// # Panics
    /// Panics on out-of-range configuration.
    pub fn new(cfg: OnlineConfig) -> Self {
        assert!((0.0..1.0).contains(&cfg.k), "k must be in [0,1)");
        assert!((0.0..=1.0).contains(&cfg.budget), "budget in [0,1]");
        assert!(cfg.window >= 16, "window too small to estimate tails");
        assert!(cfg.reoptimize_every >= 1);
        assert!(
            cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0,
            "learning rate in (0,1]"
        );
        if let Some(shaper) = cfg.load {
            // Surface a misconfigured shaper at construction, not at
            // the first re-optimization.
            let _ = shaper.damping(0.0);
        }
        OnlineAdapter {
            cfg,
            primary: Treap::new(0xA11CE),
            primary_order: VecDeque::with_capacity(cfg.window + 1),
            reissue: Treap::new(0xB0B),
            reissue_order: VecDeque::with_capacity(cfg.window + 1),
            pairs: VecDeque::new(),
            censored_in_window: 0,
            seen_since_opt: 0,
            delay: 0.0,
            probability: 0.0,
            last_opt: None,
            reoptimizations: 0,
            correlated_reoptimizations: 0,
            used_correlated: false,
            utilization: 0.0,
            shift_resets: 0,
        }
    }

    /// Records a completed primary request's response time.
    pub fn observe_primary(&mut self, response: f64) {
        assert!(response.is_finite(), "response must be finite");
        self.push_primary(response);
        self.note_observation();
    }

    /// Records a completed reissue request's response time (measured
    /// from its own dispatch).
    pub fn observe_reissue(&mut self, response: f64) {
        assert!(response.is_finite(), "response must be finite");
        self.push_reissue(response);
        self.note_observation();
    }

    /// Records a raced hedge: the primary's exact response time plus
    /// the reissue's outcome — exact when the loser completed, censored
    /// at its elapsed-at-retraction lower bound when the tied-request
    /// cancel landed in time.
    ///
    /// The exact sides also feed the marginal windows, so a pair counts
    /// as one completed query toward the re-optimization trigger.
    ///
    /// # Panics
    /// Panics on non-finite values.
    pub fn observe_pair(&mut self, primary_ms: f64, reissue: ReissueOutcome) {
        assert!(primary_ms.is_finite(), "response must be finite");
        let y = match reissue {
            ReissueOutcome::Completed(v) => {
                assert!(v.is_finite(), "response must be finite");
                self.push_reissue(v);
                Obs::Exact(v)
            }
            ReissueOutcome::Censored(lb) => {
                assert!(lb.is_finite(), "bound must be finite");
                Obs::Censored(lb.max(0.0))
            }
        };
        self.push_primary(primary_ms);
        self.push_pair(Obs::Exact(primary_ms), y);
        self.note_observation();
    }

    /// Records a raced hedge the *reissue* won while the primary's
    /// tied-request cancel landed in time: the primary is censored at
    /// its elapsed-at-retraction lower bound, the reissue is exact.
    ///
    /// The censored primary does **not** enter the marginal primary
    /// window directly; its Kaplan–Meier completion is merged into the
    /// optimizer's primary samples at re-optimization time, so the
    /// straggler mass that cancellation hides from the marginal stream
    /// still reaches the delay sweep.
    ///
    /// # Panics
    /// Panics on non-finite values.
    pub fn observe_pair_censored_primary(&mut self, primary_lower_bound_ms: f64, reissue_ms: f64) {
        assert!(
            primary_lower_bound_ms.is_finite() && reissue_ms.is_finite(),
            "response must be finite"
        );
        self.push_reissue(reissue_ms);
        self.push_pair(
            Obs::Censored(primary_lower_bound_ms.max(0.0)),
            Obs::Exact(reissue_ms),
        );
        self.note_observation();
    }

    fn push_primary(&mut self, response: f64) {
        self.primary.insert(response);
        self.primary_order.push_back(response);
        if self.primary_order.len() > self.cfg.window {
            let old = self.primary_order.pop_front().unwrap();
            self.primary.remove(old);
        }
    }

    fn push_reissue(&mut self, response: f64) {
        self.reissue.insert(response);
        self.reissue_order.push_back(response);
        if self.reissue_order.len() > self.cfg.window {
            let old = self.reissue_order.pop_front().unwrap();
            self.reissue.remove(old);
        }
    }

    fn push_pair(&mut self, x: Obs, y: Obs) {
        if x.is_censored() || y.is_censored() {
            self.censored_in_window += 1;
        }
        self.pairs.push_back((x, y));
        if self.pairs.len() > self.cfg.window {
            let (ox, oy) = self.pairs.pop_front().unwrap();
            if ox.is_censored() || oy.is_censored() {
                self.censored_in_window -= 1;
            }
        }
    }

    /// Completes the pair window's censored sides against KM curves
    /// fit on the pooled pair-side + marginal-window observations (see
    /// the comment in [`reoptimize`](Self::reoptimize) for why the
    /// marginals must be pooled in).
    fn complete_with_marginals(&self, pairs: &[(Obs, Obs)], rx: &[f64]) -> Vec<(f64, f64)> {
        let mut x_obs: Vec<Obs> = rx.iter().map(|&v| Obs::Exact(v)).collect();
        x_obs.extend(pairs.iter().map(|p| p.0).filter(|o| o.is_censored()));
        let km_x = KaplanMeier::fit(&x_obs);
        let mut y_obs: Vec<Obs> = self.reissue_order.iter().map(|&v| Obs::Exact(v)).collect();
        y_obs.extend(pairs.iter().map(|p| p.1).filter(|o| o.is_censored()));
        let km_y = KaplanMeier::fit(&y_obs);
        complete_pairs_with(&km_x, &km_y, pairs)
    }

    /// Counts one completed observation and re-optimizes when due.
    fn note_observation(&mut self) {
        self.seen_since_opt += 1;
        if self.seen_since_opt >= self.cfg.reoptimize_every
            && self.primary_order.len() >= self.cfg.window.min(64)
        {
            self.reoptimize();
            self.seen_since_opt = 0;
        }
    }

    /// Distribution-free regime-shift detector: trips when at least
    /// [`SHIFT_RECENT`]`/2` of the most recent primary samples sit
    /// above the whole window's P75 (upward shift) or below its P25
    /// (downward). Under a stationary stream each tail event has
    /// probability 1/4, so half of 64 is a ≈`3e-5` false positive per
    /// check per side — robust even to strongly bimodal workloads,
    /// where a location-based (median-ratio) detector false-trips.
    fn detect_shift(&self) -> bool {
        if self.primary_order.len() < 2 * SHIFT_RECENT {
            return false;
        }
        let (Some(hi), Some(lo)) = (self.primary.quantile(0.75), self.primary.quantile(0.25))
        else {
            return false;
        };
        let mut above = 0usize;
        let mut below = 0usize;
        for &v in self.primary_order.iter().rev().take(SHIFT_RECENT) {
            if v > hi {
                above += 1;
            } else if v < lo {
                below += 1;
            }
        }
        above >= SHIFT_RECENT / 2 || below >= SHIFT_RECENT / 2
    }

    /// Drops every pre-shift sample: both marginal windows keep only
    /// their most recent [`SHIFT_RECENT`] observations, and the pair
    /// window is cleared outright (Kaplan–Meier completion against
    /// stale marginals would impute the old regime back in).
    fn reset_window_to_recent(&mut self) {
        while self.primary_order.len() > SHIFT_RECENT {
            let old = self.primary_order.pop_front().unwrap();
            self.primary.remove(old);
        }
        while self.reissue_order.len() > SHIFT_RECENT {
            let old = self.reissue_order.pop_front().unwrap();
            self.reissue.remove(old);
        }
        self.pairs.clear();
        self.censored_in_window = 0;
        self.shift_resets += 1;
    }

    fn reoptimize(&mut self) {
        let shifted = self.detect_shift();
        if shifted {
            self.reset_window_to_recent();
        }
        let mut rx = self.primary.to_sorted_vec();
        let opt = if self.pairs.len() >= self.cfg.min_pairs.max(2) {
            // §4.2 path: complete the censored pairs Kaplan–Meier-style
            // and price the joint structure into the policy.
            //
            // The KM fits pool the pair sides with the *marginal*
            // windows. This matters for the primary side: a straggler
            // that raced is nearly always retracted in time (it was
            // stuck in a queue — that is why it lost), so the pair
            // window alone contains almost no deep primary *events*
            // and its KM would impute censored stragglers back into
            // the body. The marginal window still sees the full
            // latency of stragglers that were never hedged (the
            // q-coin spares most of them), so pooling restores the
            // deep tail the imputation needs.
            let pairs: Vec<(Obs, Obs)> = self.pairs.iter().copied().collect();
            let completed = self.complete_with_marginals(&pairs, &rx);
            // Censored primaries (reissue-won races whose primary was
            // retracted) are absent from the marginal window; merge
            // their completions so the delay sweep sees the straggler
            // mass that cancellation hid.
            let mut grew = false;
            for ((x, _), &(cx, _)) in pairs.iter().zip(&completed) {
                if x.is_censored() {
                    rx.push(cx);
                    grew = true;
                }
            }
            if grew {
                rx.sort_by(f64::total_cmp);
            }
            self.used_correlated = true;
            self.correlated_reoptimizations += 1;
            compute_optimal_single_r_correlated(
                &rx,
                &completed,
                self.cfg.k,
                self.effective_budget(),
            )
        } else {
            // §4.1 fallback: with no reissue observations yet, treat
            // reissues as exchangeable with primaries (the batch loop's
            // fallback).
            let ry = if self.reissue.len() >= 16 {
                self.reissue.to_sorted_vec()
            } else {
                rx.clone()
            };
            self.used_correlated = false;
            compute_optimal_single_r(&rx, &ry, self.cfg.k, self.effective_budget())
        };
        // Damped update, as in §4.3 — except after a shift reset,
        // where damping toward the *old* regime's delay is exactly the
        // staleness the reset removed: snap instead.
        if shifted {
            self.delay = opt.delay;
        } else {
            self.delay += self.cfg.learning_rate * (opt.delay - self.delay);
        }
        self.refresh_probability();
        self.last_opt = Some(opt);
        self.reoptimizations += 1;
    }

    /// Recomputes the live probability so the expected reissue rate
    /// `q · Pr(X ≥ d)` equals the *effective* (damped) budget at the
    /// current window and delay.
    fn refresh_probability(&mut self) {
        let budget = self.effective_budget();
        let outstanding = 1.0 - self.primary.cdf(self.delay);
        let q_budget = if budget <= 0.0 {
            0.0
        } else if outstanding > 0.0 {
            (budget / outstanding).min(1.0)
        } else {
            1.0
        };
        // The damping multiplies the probability a second time (the
        // budget above is already damped). Budget damping alone
        // cannot suppress deep-delay reissues: at a delay past the
        // bulk of the distribution `outstanding` is tiny and
        // `budget / outstanding` saturates at 1 no matter how small
        // the damped budget — so the policy would still duplicate
        // every rare monster query. The budget metric prices a
        // reissue by *count*; its capacity cost is the duplicated
        // work, and at high ρ̂ the rare-but-huge duplicate is exactly
        // the one that tips a saturated cluster over. Multiplying q
        // by the damping bounds that directly.
        self.probability = q_budget * self.damping();
    }

    /// The shaper's budget multiplier at the current utilization
    /// estimate (1 when load awareness is off).
    fn damping(&self) -> f64 {
        match self.cfg.load {
            Some(shaper) => shaper.damping(self.utilization),
            None => 1.0,
        }
    }

    /// The configured budget damped by the load shaper at the current
    /// utilization estimate — equal to [`OnlineConfig::budget`] when
    /// load awareness is off.
    pub fn effective_budget(&self) -> f64 {
        self.cfg.budget * self.damping()
    }

    /// Feeds an external utilization estimate ρ̂ (clamped to `[0, 1]`;
    /// NaN reads as 0). With [`OnlineConfig::load`] set this rescales
    /// the live reissue probability *immediately* — the delay moves
    /// only at re-optimizations, but budget damping must track a load
    /// ramp without waiting out `reoptimize_every`. A no-op signal
    /// store when load awareness is off.
    pub fn set_utilization(&mut self, rho: f64) {
        self.utilization = if rho.is_nan() {
            0.0
        } else {
            rho.clamp(0.0, 1.0)
        };
        if self.cfg.load.is_some() && self.reoptimizations > 0 {
            self.refresh_probability();
        }
    }

    /// The most recent utilization estimate fed via
    /// [`set_utilization`](Self::set_utilization).
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Regime-shift window resets performed so far.
    pub fn shift_resets(&self) -> u64 {
        self.shift_resets
    }

    /// The current policy parameters as an [`OptimalSingleR`] record
    /// (delay/probability are the *live, damped* values; predictions
    /// come from the last re-optimization).
    pub fn policy(&self) -> OptimalSingleR {
        let outstanding = if self.primary.is_empty() {
            0.0
        } else {
            1.0 - self.primary.cdf(self.delay)
        };
        OptimalSingleR {
            delay: self.delay,
            probability: self.probability,
            outstanding_at_delay: outstanding,
            predicted_latency: self.last_opt.map_or(f64::NAN, |o| o.predicted_latency),
            budget_used: self.probability * outstanding,
            predicted_success: self.last_opt.map_or(f64::NAN, |o| o.predicted_success),
        }
    }

    /// Current window quantile of primary response times, `O(log n)`.
    pub fn window_quantile(&self, p: f64) -> Option<f64> {
        self.primary.quantile(p)
    }

    /// Number of re-optimizations performed.
    pub fn reoptimizations(&self) -> u64 {
        self.reoptimizations
    }

    /// Number of re-optimizations that ran the §4.2 correlated
    /// optimizer (vs the §4.1 independence fallback).
    pub fn correlated_reoptimizations(&self) -> u64 {
        self.correlated_reoptimizations
    }

    /// Whether the most recent re-optimization used the correlated
    /// optimizer (`false` before any re-optimization).
    pub fn using_correlated(&self) -> bool {
        self.used_correlated
    }

    /// Observations currently held in the primary window.
    pub fn window_len(&self) -> usize {
        self.primary_order.len()
    }

    /// Raced pairs currently held in the pair window.
    pub fn pairs_len(&self) -> usize {
        self.pairs.len()
    }

    /// Pairs in the window with at least one censored side.
    pub fn censored_pairs_len(&self) -> usize {
        self.censored_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distributions::rng::seeded;
    use distributions::{Exponential, LogNormal, Sample};
    use rand::rngs::SmallRng;
    use rand::Rng;

    fn cfg() -> OnlineConfig {
        OnlineConfig {
            k: 0.95,
            budget: 0.1,
            window: 2_000,
            reoptimize_every: 500,
            learning_rate: 0.5,
            min_pairs: 64,
            load: None,
        }
    }

    #[test]
    fn policy_respects_budget_on_stationary_stream() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(1);
        let d = Exponential::new(1.0);
        for _ in 0..10_000 {
            a.observe_primary(d.sample(&mut rng));
        }
        let p = a.policy();
        assert!(a.reoptimizations() >= 4);
        assert!(p.budget_used <= 0.1 + 1e-9, "budget {}", p.budget_used);
        assert!(p.delay > 0.0);
        // Exp(1) at B=0.1: optimal delay sits in the body, well below
        // the P95 (≈3) — the SingleR advantage.
        assert!(p.delay < 3.0, "delay {}", p.delay);
    }

    #[test]
    fn adapts_to_distribution_shift() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(2);
        // Phase 1: fast service.
        let fast = Exponential::new(1.0);
        for _ in 0..4_000 {
            a.observe_primary(fast.sample(&mut rng));
        }
        let d_fast = a.policy().delay;
        // Phase 2: the service slows 10x; the delay must follow.
        let slow = Exponential::new(0.1);
        for _ in 0..6_000 {
            a.observe_primary(slow.sample(&mut rng));
        }
        let d_slow = a.policy().delay;
        assert!(
            d_slow > 4.0 * d_fast,
            "delay failed to track drift: {d_fast} -> {d_slow}"
        );
        // And the budget still holds under the new distribution.
        assert!(a.policy().budget_used <= 0.1 + 1e-9);
    }

    #[test]
    fn window_eviction_bounds_memory() {
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 100,
            reoptimize_every: 50,
            ..cfg()
        });
        let mut rng = seeded(3);
        let d = Exponential::new(1.0);
        for _ in 0..1_000 {
            a.observe_primary(d.sample(&mut rng));
            a.observe_pair(d.sample(&mut rng), ReissueOutcome::Censored(0.5));
        }
        assert_eq!(a.window_len(), 100);
        assert_eq!(a.pairs_len(), 100, "pair window must evict too");
        assert_eq!(a.censored_pairs_len(), 100);
        assert!(a.window_quantile(0.5).is_some());
    }

    #[test]
    fn reissue_observations_feed_optimizer() {
        let mut a = OnlineAdapter::new(cfg());
        let mut rng = seeded(4);
        let d = Exponential::new(1.0);
        // Reissues are much slower than primaries here: the optimizer
        // should discount them (smaller predicted benefit).
        for _ in 0..5_000 {
            a.observe_primary(d.sample(&mut rng));
            a.observe_reissue(10.0 * d.sample(&mut rng));
        }
        let p = a.policy();
        assert!(p.budget_used <= 0.1 + 1e-9);
        assert!(p.predicted_latency.is_finite());
    }

    #[test]
    fn reissue_observations_advance_reoptimization_trigger() {
        // Regression: a reissue-heavy stretch must not leave the policy
        // stale past `reoptimize_every` (the counter used to advance on
        // primaries only).
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 64,
            reoptimize_every: 100,
            ..cfg()
        });
        let mut rng = seeded(5);
        let d = Exponential::new(1.0);
        for _ in 0..64 {
            a.observe_primary(d.sample(&mut rng));
        }
        assert_eq!(a.reoptimizations(), 0);
        for _ in 0..36 {
            a.observe_reissue(d.sample(&mut rng));
        }
        assert_eq!(
            a.reoptimizations(),
            1,
            "100 mixed observations must trigger a re-optimization"
        );
    }

    #[test]
    fn no_reissues_until_warmed_up() {
        let a = OnlineAdapter::new(cfg());
        let p = a.policy();
        assert_eq!(p.probability, 0.0);
        assert_eq!(a.window_len(), 0);
        assert_eq!(a.pairs_len(), 0);
        assert!(!a.using_correlated());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let _ = OnlineAdapter::new(OnlineConfig { window: 4, ..cfg() });
    }

    #[test]
    fn pair_window_gates_correlated_path() {
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 256,
            reoptimize_every: 64,
            min_pairs: 128,
            ..cfg()
        });
        let mut rng = seeded(6);
        let d = Exponential::new(1.0);
        // Below min_pairs: independent path.
        for _ in 0..100 {
            a.observe_pair(
                d.sample(&mut rng),
                ReissueOutcome::Completed(d.sample(&mut rng)),
            );
        }
        assert!(a.reoptimizations() >= 1);
        assert!(!a.using_correlated());
        assert_eq!(a.correlated_reoptimizations(), 0);
        // Past min_pairs: correlated path engages.
        for _ in 0..100 {
            a.observe_pair(
                d.sample(&mut rng),
                ReissueOutcome::Completed(d.sample(&mut rng)),
            );
        }
        assert!(a.using_correlated());
        assert!(a.correlated_reoptimizations() >= 1);
        // Pinned to the independence model, the gate never opens.
        let mut pinned = OnlineAdapter::new(OnlineConfig {
            window: 256,
            reoptimize_every: 64,
            min_pairs: usize::MAX,
            ..cfg()
        });
        for _ in 0..500 {
            pinned.observe_pair(
                d.sample(&mut rng),
                ReissueOutcome::Completed(d.sample(&mut rng)),
            );
        }
        assert!(pinned.reoptimizations() >= 4);
        assert!(!pinned.using_correlated());
    }

    #[test]
    fn censored_primary_pairs_accepted() {
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 128,
            reoptimize_every: 64,
            min_pairs: 16,
            ..cfg()
        });
        let mut rng = seeded(7);
        let d = Exponential::new(1.0);
        for _ in 0..64 {
            a.observe_primary(d.sample(&mut rng));
        }
        for _ in 0..64 {
            // Reissue won at y; primary retracted after y + 1 elapsed.
            let y = d.sample(&mut rng);
            a.observe_pair_censored_primary(y + 1.0, y);
        }
        assert!(a.using_correlated());
        let p = a.policy();
        assert!(p.delay.is_finite() && p.delay >= 0.0);
        assert!(p.budget_used <= 0.1 + 1e-9);
        assert_eq!(a.censored_pairs_len(), 64);
    }

    /// The noise-band workload of the correlated-adaptation story: a
    /// query's latency is a shared per-query cost `C` (the "noise
    /// band": a fast mode of cheap lookups and a slow mode of heavy
    /// queries, jittered) plus a rare *dispatch-specific* stall. A
    /// redraw re-samples only the stall and the jitter, so hedging
    /// inside the band wins nothing — but the *marginal* reissue
    /// distribution is full of fast-mode samples, which fools the
    /// independence model into pricing band hedges as if a slow-mode
    /// query could redraw into the fast mode.
    ///
    /// Returns `(x, y)`: primary and reissue service times.
    fn band_stall_pair(rng: &mut SmallRng) -> (f64, f64) {
        let jitter = LogNormal::new(0.0, 0.15);
        let c = if rng.gen::<f64>() < 0.55 { 0.1 } else { 3.0 };
        let stall = |rng: &mut SmallRng| {
            if rng.gen::<f64>() < 0.03 {
                50.0 + Exponential::new(0.2).sample(rng)
            } else {
                0.0
            }
        };
        let x = c * jitter.sample(rng) + stall(rng);
        let y = c * jitter.sample(rng) + stall(rng);
        (x, y)
    }

    /// Feeds one band-stall query to the adapter the way a hedging
    /// client with tied-request cancellation would, racing a
    /// hypothetical reissue at delay `d0`: no race below `d0`; a lost
    /// reissue is censored at its elapsed-at-cancel bound.
    fn feed_raced(a: &mut OnlineAdapter, x: f64, y: f64, d0: f64) {
        if x <= d0 {
            a.observe_primary(x);
        } else if d0 + y < x {
            // Reissue wins; the losing primary completes (exact pair).
            a.observe_pair(x, ReissueOutcome::Completed(y));
        } else {
            // Primary wins; the reissue is retracted in time.
            a.observe_pair(x, ReissueOutcome::Censored(x - d0));
        }
    }

    #[test]
    fn correlated_adapter_clears_noise_band_where_independent_does_not() {
        let base = OnlineConfig {
            k: 0.95,
            budget: 0.1,
            window: 8_000,
            reoptimize_every: 2_000,
            learning_rate: 1.0,
            min_pairs: 200,
            load: None,
        };
        let mut corr = OnlineAdapter::new(base);
        let mut ind = OnlineAdapter::new(OnlineConfig {
            min_pairs: usize::MAX,
            ..base
        });
        let mut rng = seeded(8);
        let d0 = 0.3;
        for _ in 0..40_000 {
            let (x, y) = band_stall_pair(&mut rng);
            feed_raced(&mut corr, x, y, d0);
            feed_raced(&mut ind, x, y, d0);
        }
        assert!(corr.using_correlated());
        assert!(!ind.using_correlated());
        assert!(
            corr.censored_pairs_len() > corr.pairs_len() / 2,
            "want heavy censoring"
        );
        // "Past the noise band" = past the slow mode's median (3.0):
        // a delay below it spends budget re-drawing band queries whose
        // correlated redraw wins nothing.
        let band_edge = 3.0;
        let d_corr = corr.policy().delay;
        let d_ind = ind.policy().delay;
        assert!(
            d_corr > band_edge,
            "correlated delay {d_corr} should clear the band edge {band_edge}"
        );
        assert!(
            d_ind < band_edge,
            "independence-model delay {d_ind} should sit inside the band (edge {band_edge})"
        );
        assert!(d_corr > d_ind);
        // Both stay within budget on their own accounting.
        assert!(corr.policy().budget_used <= 0.1 + 1e-9);
        assert!(ind.policy().budget_used <= 0.1 + 1e-9);
    }

    #[test]
    fn heavy_censoring_still_converges_near_oracle() {
        // The adapter sees only censored race outcomes; the oracle sees
        // the full uncensored joint sample. Their chosen delays must
        // land in the same regime (both past the noise band, within a
        // factor of each other).
        let mut a = OnlineAdapter::new(OnlineConfig {
            k: 0.95,
            budget: 0.1,
            window: 8_000,
            reoptimize_every: 2_000,
            learning_rate: 1.0,
            min_pairs: 200,
            load: None,
        });
        let mut rng = seeded(9);
        let d0 = 0.3;
        let mut oracle_rx = Vec::new();
        let mut oracle_pairs = Vec::new();
        for _ in 0..40_000 {
            let (x, y) = band_stall_pair(&mut rng);
            oracle_rx.push(x);
            if x > d0 {
                oracle_pairs.push((x, y));
            }
            feed_raced(&mut a, x, y, d0);
        }
        let oracle = compute_optimal_single_r_correlated(&oracle_rx, &oracle_pairs, 0.95, 0.1);
        let d_adapter = a.policy().delay;
        let band_edge = 3.0;
        assert!(
            oracle.delay > band_edge,
            "oracle delay {} should clear the band",
            oracle.delay
        );
        assert!(
            d_adapter > band_edge,
            "adapter delay {d_adapter} should clear the band like the oracle"
        );
        let ratio = d_adapter / oracle.delay;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "adapter delay {d_adapter} vs oracle {} (ratio {ratio})",
            oracle.delay
        );
        assert!(a.policy().budget_used <= 0.1 + 1e-9);
    }

    #[test]
    fn utilization_damps_budget_and_deepens_delay() {
        use crate::load::LoadShaper;
        let shaper = LoadShaper::default();
        let mut blind = OnlineAdapter::new(cfg());
        let mut aware = OnlineAdapter::new(OnlineConfig {
            load: Some(shaper),
            ..cfg()
        });
        aware.set_utilization(0.85);
        let mut rng = seeded(11);
        let d = Exponential::new(1.0);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            blind.observe_primary(v);
            aware.observe_primary(v);
        }
        let damp = shaper.damping(0.85);
        assert!(damp < 0.1, "at ρ̂=0.85 the budget should be heavily cut");
        assert!((aware.effective_budget() - 0.1 * damp).abs() < 1e-12);
        assert_eq!(blind.effective_budget(), 0.1);
        let (pb, pa) = (blind.policy(), aware.policy());
        // Same samples, damped budget: spend at most the damped
        // budget, and buy a deeper (never shallower) delay with it.
        assert!(
            pa.budget_used <= 0.1 * damp + 1e-9,
            "used {}",
            pa.budget_used
        );
        assert!(pa.probability < pb.probability);
        assert!(
            pa.delay >= pb.delay - 1e-9,
            "damped budget must deepen the delay: blind {} aware {}",
            pb.delay,
            pa.delay
        );
        // At saturation the policy is fully off.
        aware.set_utilization(1.0);
        assert_eq!(aware.effective_budget(), 0.0);
        assert_eq!(aware.policy().probability, 0.0);
    }

    #[test]
    fn set_utilization_rescales_probability_between_reoptimizations() {
        use crate::load::LoadShaper;
        let mut a = OnlineAdapter::new(OnlineConfig {
            load: Some(LoadShaper::default()),
            ..cfg()
        });
        let mut rng = seeded(12);
        let d = Exponential::new(1.0);
        for _ in 0..3_000 {
            a.observe_primary(d.sample(&mut rng));
        }
        let q_unloaded = a.policy().probability;
        assert!(q_unloaded > 0.0);
        // No new observations — the rescale must not wait for a
        // re-optimization.
        let reopts = a.reoptimizations();
        a.set_utilization(0.8);
        assert_eq!(a.reoptimizations(), reopts);
        let q_loaded = a.policy().probability;
        assert!(
            q_loaded < 0.5 * q_unloaded,
            "q must fall immediately with ρ̂: {q_unloaded} -> {q_loaded}"
        );
        a.set_utilization(0.2);
        let q_back = a.policy().probability;
        assert!(
            (q_back - q_unloaded).abs() < 1e-9,
            "full budget must restore q: {q_unloaded} vs {q_back}"
        );
        // A load-blind adapter ignores the signal entirely.
        let mut blind = OnlineAdapter::new(cfg());
        let mut rng = seeded(12);
        for _ in 0..3_000 {
            blind.observe_primary(d.sample(&mut rng));
        }
        let q0 = blind.policy().probability;
        blind.set_utilization(0.9);
        assert_eq!(blind.policy().probability, q0);
        assert_eq!(blind.effective_budget(), 0.1);
    }

    /// Satellite regression test: after a 10× step change in service
    /// time the shift detector must discard the stale window and d*
    /// must re-converge within a bounded number of re-optimizations —
    /// not lag a full window of mixed samples.
    #[test]
    fn shift_reset_reconverges_within_bounded_reoptimizations() {
        let shift_cfg = OnlineConfig {
            window: 2_000,
            reoptimize_every: 250,
            ..cfg()
        };
        // Reference: the steady-state delay on the slow regime alone.
        let mut reference = OnlineAdapter::new(shift_cfg);
        let mut rng = seeded(13);
        let slow = Exponential::new(0.1);
        for _ in 0..8_000 {
            reference.observe_primary(slow.sample(&mut rng));
        }
        let d_ref = reference.policy().delay;
        assert!(d_ref > 0.0);

        // Adapter under test: converge on the fast regime, then step.
        let mut a = OnlineAdapter::new(shift_cfg);
        let fast = Exponential::new(1.0);
        for _ in 0..4_000 {
            a.observe_primary(fast.sample(&mut rng));
        }
        assert_eq!(a.shift_resets(), 0, "stationary stream must not trip");
        let d_fast = a.policy().delay;
        assert!(d_fast < 0.5 * d_ref);
        // Post-shift: within 3 re-optimization periods the delay must
        // reach the slow regime's neighborhood. Without the reset the
        // window is still ≥ 60% stale fast-regime samples at that
        // point and the damped update has moved at most 7/8 of the way
        // toward optima computed on the *mixture* — far short.
        let bound = 3 * shift_cfg.reoptimize_every;
        let mut seen = 0;
        while seen < bound && a.policy().delay < 0.6 * d_ref {
            a.observe_primary(slow.sample(&mut rng));
            seen += 1;
        }
        assert!(
            a.policy().delay >= 0.6 * d_ref,
            "delay {} failed to reach 0.6×{d_ref} within {bound} post-shift samples",
            a.policy().delay
        );
        assert!(a.shift_resets() >= 1, "the step change must trip a reset");
        assert!(a.policy().budget_used <= 0.1 + 1e-9);

        // Downward step re-converges too (the P25 side of the
        // detector).
        for _ in 0..4_000 {
            a.observe_primary(slow.sample(&mut rng));
        }
        let resets_before = a.shift_resets();
        let mut seen = 0;
        while seen < bound && a.policy().delay > 2.0 * d_fast {
            a.observe_primary(fast.sample(&mut rng));
            seen += 1;
        }
        assert!(
            a.policy().delay <= 2.0 * d_fast,
            "downward shift: delay {} stuck above 2×{d_fast}",
            a.policy().delay
        );
        assert!(a.shift_resets() > resets_before);
    }

    #[test]
    fn stationary_streams_do_not_trip_shift_resets() {
        // The bimodal band-stall workload is the adversarial case for
        // location-based detectors; the quartile sign test must hold.
        let mut a = OnlineAdapter::new(OnlineConfig {
            window: 2_000,
            reoptimize_every: 250,
            ..cfg()
        });
        let mut rng = seeded(14);
        for _ in 0..20_000 {
            let (x, _) = band_stall_pair(&mut rng);
            a.observe_primary(x);
        }
        assert_eq!(a.shift_resets(), 0, "stationary bimodal stream tripped");
    }
}
