//! Latency metrics: exact and streaming quantiles, reduction ratios,
//! the paper's remediation rate, and service-time histograms.

/// Exact nearest-rank `p`-quantile of a sample (copies and sorts).
///
/// # Panics
/// Panics if `xs` is empty or `p ∉ [0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
    v[rank]
}

/// Tail-latency reduction ratio `baseline / improved` (the Y-axis of
/// Figures 3a and 6; > 1 means the policy helped).
///
/// # Panics
/// Panics if `improved ≤ 0`.
pub fn reduction_ratio(baseline: f64, improved: f64) -> f64 {
    assert!(improved > 0.0, "improved latency must be positive");
    baseline / improved
}

/// The paper's *remediation rate* (§5.1, Figure 3b): among queries that
/// actually reissued, the fraction whose primary would have missed the
/// tail-latency target `t` but whose reissue responded in time, i.e.
/// `Pr(X > t ∧ Y < t − d)` estimated over issued reissues.
///
/// `pairs` holds `(primary, reissue)` response times of reissued
/// queries (reissue measured from its own dispatch at `d`).
/// Returns 0 for an empty sample.
pub fn remediation_rate(pairs: &[(f64, f64)], t: f64, d: f64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let remedied = pairs.iter().filter(|&&(x, y)| x > t && y < t - d).count();
    remedied as f64 / pairs.len() as f64
}

/// Streaming quantile estimator using the P² algorithm
/// (Jain & Chlamtac, 1985).
///
/// Tracks a single quantile in `O(1)` space without storing samples —
/// used for online monitoring in long simulations where keeping every
/// response time would dominate memory. Exact for ≤ 5 observations,
/// approximate beyond.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    /// Panics if `p ∉ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(f64::total_cmp);
                for i in 0..5 {
                    self.q[i] = self.initial[i];
                }
            }
            return;
        }

        // Find cell k and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the P² parabolic update.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let qp = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, s)
                };
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (qm, q0, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n0, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q0 + s / (np - nm)
            * ((n0 - nm + s) * (qp - q0) / (np - n0) + (np - n0 - s) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut v = self.initial.clone();
            v.sort_by(f64::total_cmp);
            let rank = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[rank]);
        }
        Some(self.q[2])
    }
}

/// A log-bucketed streaming histogram with a guaranteed *relative*
/// quantile error — the shared latency recorder for the simulator, the
/// scale-out harness and the hedged client (which previously each kept
/// a full `Vec` of samples and sorted it per quantile probe).
///
/// Bucket boundaries grow geometrically: bucket `i` covers
/// `(m·γ^(i−1), m·γ^i]` with `γ = (1+α)/(1−α)`, and a recorded value
/// is estimated by `2γ·L/(1+γ)` of its bucket's lower edge `L`, which
/// bounds the relative error of any quantile estimate by `α`
/// (the DDSketch argument: both bucket endpoints land within
/// `(γ−1)/(γ+1) = α` of the estimate). Memory is `O(log(max/m)/α)` —
/// a few hundred `u64`s for millisecond-scale latencies at α = 1% —
/// independent of how many samples stream through.
///
/// Exact first and second moments (`mean`, `std`), the exact observed
/// `min`/`max`, and a total count ride along, so summary tables need
/// no second pass over raw samples. Two histograms with identical
/// parameters [`merge`](Self::merge) losslessly (bucket-wise sum),
/// which makes per-worker recording trivially combinable.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    alpha: f64,
    gamma: f64,
    ln_gamma: f64,
    /// Lower edge of bucket 1 (values ≤ `min_value` share bucket 0).
    min_value: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    sum_sq: f64,
    min_seen: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram with relative quantile accuracy `alpha`,
    /// resolving values down to `min_value` (everything at or below it
    /// shares the first bucket). For millisecond latencies the
    /// convenience constructor [`LogHistogram::latency_ms`] uses
    /// α = 1% and 1 µs resolution.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `min_value > 0`.
    pub fn new(alpha: f64, min_value: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(
            min_value > 0.0 && min_value.is_finite(),
            "min_value must be positive"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        LogHistogram {
            alpha,
            gamma,
            ln_gamma: gamma.ln(),
            min_value,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// The standard latency recorder: 1% relative quantile error, 1 µs
    /// resolution (values in milliseconds).
    pub fn latency_ms() -> Self {
        LogHistogram::new(0.01, 1e-3)
    }

    /// The configured relative quantile accuracy.
    pub fn relative_accuracy(&self) -> f64 {
        self.alpha
    }

    /// The multiplicative width of one bucket (`γ = (1+α)/(1−α)`): any
    /// estimate returned for a sample is within one such factor of it.
    pub fn bucket_ratio(&self) -> f64 {
        self.gamma
    }

    fn bucket_index(&self, v: f64) -> usize {
        if v <= self.min_value {
            return 0;
        }
        // Bucket i ≥ 1 covers (m·γ^(i−1), m·γ^i].
        ((v / self.min_value).ln() / self.ln_gamma).ceil().max(1.0) as usize
    }

    /// The value this histogram would report for a sample equal to
    /// `v` — `v` rounded to its bucket's representative point. Useful
    /// for bounding downstream effects of the bucketing (e.g. how far
    /// an optimizer fed bucket values can drift from one fed raw
    /// samples).
    pub fn round_value(&self, v: f64) -> f64 {
        let idx = self.bucket_index(v.max(0.0));
        self.estimate_for(idx)
    }

    /// Representative value of bucket `idx`: the point minimizing the
    /// worst-case relative error over the bucket's range.
    fn estimate_for(&self, idx: usize) -> f64 {
        if idx == 0 {
            return self.min_value;
        }
        let lower = self.min_value * self.gamma.powi(idx as i32 - 1);
        lower * 2.0 * self.gamma / (1.0 + self.gamma)
    }

    /// Records a value (negative values clamp into the first bucket).
    ///
    /// # Panics
    /// Panics on non-finite values.
    pub fn record(&mut self, v: f64) {
        assert!(v.is_finite(), "histogram values must be finite");
        let v = v.max(0.0);
        let idx = self.bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.sum_sq += v * v;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Merges another histogram into this one (bucket-wise sum; exact
    /// and associative).
    ///
    /// # Panics
    /// Panics if the two histograms were built with different `alpha`
    /// or `min_value` (their buckets would not align).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.alpha == other.alpha && self.min_value == other.min_value,
            "cannot merge histograms with different bucketing"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Total recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Exact population standard deviation (`None` when empty).
    pub fn std(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some(
            (self.sum_sq / self.total as f64 - mean * mean)
                .max(0.0)
                .sqrt(),
        )
    }

    /// Exact maximum recorded value (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Exact minimum recorded value (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min_seen)
    }

    /// Nearest-rank `p`-quantile estimate: within relative error `α`
    /// of the exact sorted-sample quantile (for samples above
    /// `min_value`), clamped to the exact observed min/max. `None`
    /// when empty.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.estimate_for(idx).clamp(self.min_seen, self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// Number of recorded values above `threshold`, at bucket
    /// resolution: exact when `threshold` is at or below `min_value`
    /// or on a bucket boundary, otherwise counts whole buckets whose
    /// range lies above the threshold's bucket.
    pub fn count_over(&self, threshold: f64) -> u64 {
        if self.total == 0 || threshold >= self.max_seen {
            return 0;
        }
        if threshold < self.min_seen {
            return self.total;
        }
        let cut = self.bucket_index(threshold.max(0.0));
        self.counts.iter().skip(cut + 1).sum()
    }
}

/// A fixed-width histogram for service-time distributions (Figure 9
/// uses 20 ms bins with a log-scale count axis).
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each; values
    /// beyond `bins * bin_width` land in an overflow bucket.
    ///
    /// # Panics
    /// Panics if `bin_width ≤ 0` or `bins == 0`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a value (negative values clamp into the first bin).
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        let idx = (v.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates `(bin_midpoint, count)` for every regular bin.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| ((i as f64 + 0.5) * self.bin_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_basic() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.95), 95.0);
        assert_eq!(quantile(&xs, 0.99), 99.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn reduction_ratio_basic() {
        assert!((reduction_ratio(900.0, 400.0) - 2.25).abs() < 1e-12);
        assert!((reduction_ratio(100.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remediation_counts_saves_only() {
        let t = 10.0;
        let d = 2.0;
        let pairs = [
            (12.0, 5.0), // x > t, y < 8  -> remedied
            (12.0, 9.0), // x > t, y ≥ 8  -> reissue too slow
            (7.0, 1.0),  // x ≤ t          -> reissue unnecessary
            (15.0, 7.9), // remedied
        ];
        assert!((remediation_rate(&pairs, t, d) - 0.5).abs() < 1e-12);
        assert_eq!(remediation_rate(&[], t, d), 0.0);
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        for v in [5.0, 1.0, 3.0] {
            p2.observe(v);
        }
        assert_eq!(p2.estimate(), Some(3.0)); // exact median of 3
    }

    #[test]
    fn p2_approximates_uniform_median() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic low-discrepancy stream over (0,1).
        let mut x = 0.5f64;
        for _ in 0..100_000 {
            x = (x + 0.6180339887498949) % 1.0;
            p2.observe(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "est={est}");
    }

    #[test]
    fn p2_approximates_p99_of_linear_ramp() {
        let mut p2 = P2Quantile::new(0.99);
        // Shuffled-ish ramp 0..10000 via multiplicative hashing.
        for i in 0..10_000u64 {
            let v = (i.wrapping_mul(2654435761) % 10_000) as f64;
            p2.observe(v);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 9900.0).abs() < 150.0, "est={est}");
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(20.0, 5); // covers [0,100)
        for v in [0.0, 19.9, 20.0, 55.0, 99.9, 100.0, 1000.0, -3.0] {
            h.record(v);
        }
        let counts: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![3, 1, 1, 0, 1]); // -3 clamps into bin 0
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
        let mids: Vec<f64> = h.bins().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![10.0, 30.0, 50.0, 70.0, 90.0]);
    }

    #[test]
    fn log_histogram_empty_and_basic() {
        let mut h = LogHistogram::latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count_over(0.0), 0);
        for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-9, "exact mean");
        assert_eq!(h.max(), Some(100.0));
        assert_eq!(h.min(), Some(1.0));
        // Exact std of [1,2,3,4,100]: mean 22, var (441+400+361+324+6084)/5.
        let var = (441.0 + 400.0 + 361.0 + 324.0 + 6084.0) / 5.0f64;
        assert!((h.std().unwrap() - var.sqrt()).abs() < 1e-9);
        // Quantiles land within 1% of the exact nearest-rank values.
        for (p, exact) in [(0.2, 1.0), (0.4, 2.0), (0.6, 3.0), (0.8, 4.0), (1.0, 100.0)] {
            let est = h.quantile(p).unwrap();
            assert!(
                (est - exact).abs() <= 0.01 * exact + 1e-12,
                "p={p}: est {est} vs exact {exact}"
            );
        }
        // count_over at bucket resolution: thresholds well between
        // samples are exact.
        assert_eq!(h.count_over(0.0), 5);
        assert_eq!(h.count_over(50.0), 1);
        assert_eq!(h.count_over(100.0), 0);
        assert_eq!(h.count_over(1e9), 0);
    }

    #[test]
    fn log_histogram_round_value_is_recording_estimate() {
        let mut h = LogHistogram::latency_ms();
        for v in [0.37, 5.2, 811.0] {
            let rounded = h.round_value(v);
            assert!(
                (rounded - v).abs() <= 0.01 * v,
                "round_value({v}) = {rounded} off by more than alpha"
            );
            h.record(v);
            // A single-sample histogram's median is exactly that
            // sample: the bucket estimate clamps to the observed
            // min/max.
            let mut single = LogHistogram::latency_ms();
            single.record(v);
            assert_eq!(single.quantile(0.5).unwrap(), v);
        }
    }

    #[test]
    #[should_panic(expected = "different bucketing")]
    fn log_histogram_merge_rejects_mismatched_buckets() {
        let mut a = LogHistogram::new(0.01, 1e-3);
        let b = LogHistogram::new(0.02, 1e-3);
        a.merge(&b);
    }

    /// Satellite regression: feeding an [`OnlineAdapter`] bucket-
    /// rounded samples instead of raw ones must not move the adapted
    /// `d*` by more than one bucket width (the histogram's γ ratio) —
    /// i.e. recording latencies through the shared histogram is safe
    /// for the online re-optimization loop, not just for reporting.
    #[test]
    fn log_histogram_quantiles_feed_online_adapter_within_one_bucket() {
        use crate::online::{OnlineAdapter, OnlineConfig};
        use distributions::rng::seeded;
        use distributions::{Exponential, Sample};

        let cfg = OnlineConfig {
            k: 0.95,
            budget: 0.1,
            window: 2_000,
            reoptimize_every: 500,
            learning_rate: 0.5,
            min_pairs: usize::MAX,
            load: None,
        };
        let mut exact = OnlineAdapter::new(cfg);
        let mut bucketed = OnlineAdapter::new(cfg);
        let hist = LogHistogram::latency_ms();
        let mut rng = seeded(42);
        let d = Exponential::new(0.2); // mean 5 ms
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            exact.observe_primary(v);
            bucketed.observe_primary(hist.round_value(v));
        }
        let d_exact = exact.policy().delay;
        let d_bucketed = bucketed.policy().delay;
        assert!(d_exact > 0.0);
        let one_bucket = d_exact * (hist.bucket_ratio() - 1.0);
        assert!(
            (d_exact - d_bucketed).abs() <= one_bucket + 1e-9,
            "bucketing moved d* by more than one bucket width: \
             exact {d_exact} vs bucketed {d_bucketed} (bucket {one_bucket})"
        );
    }

    proptest! {
        #[test]
        fn log_histogram_quantile_error_bounded(
            vals in proptest::collection::vec(0.001f64..1e4, 1..400),
            p in 0.0f64..1.0,
        ) {
            let mut h = LogHistogram::latency_ms();
            for &v in &vals {
                h.record(v);
            }
            let exact = quantile(&vals, p);
            let est = h.quantile(p).unwrap();
            prop_assert!(
                (est - exact).abs() <= h.relative_accuracy() * exact + 1e-12,
                "p={} est={} exact={}", p, est, exact
            );
        }

        #[test]
        fn log_histogram_merge_associative(
            a in proptest::collection::vec(0.001f64..1e4, 0..100),
            b in proptest::collection::vec(0.001f64..1e4, 0..100),
            c in proptest::collection::vec(0.001f64..1e4, 0..100),
        ) {
            let of = |vals: &[f64]| {
                let mut h = LogHistogram::latency_ms();
                for &v in vals {
                    h.record(v);
                }
                h
            };
            // (a ⊕ b) ⊕ c
            let mut left = of(&a);
            left.merge(&of(&b));
            left.merge(&of(&c));
            // a ⊕ (b ⊕ c)
            let mut right_tail = of(&b);
            right_tail.merge(&of(&c));
            let mut right = of(&a);
            right.merge(&right_tail);
            prop_assert_eq!(left.len(), right.len());
            prop_assert_eq!(left.counts.clone(), right.counts.clone());
            prop_assert_eq!(left.max(), right.max());
            prop_assert_eq!(left.min(), right.min());
            for i in 0..=10u32 {
                let p = f64::from(i) / 10.0;
                prop_assert_eq!(left.quantile(p), right.quantile(p));
            }
            // And the merged view matches recording everything into one
            // histogram directly.
            let all: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
            let direct = of(&all);
            prop_assert_eq!(left.counts, direct.counts);
        }

        #[test]
        fn log_histogram_conserves_mass_and_moments(
            vals in proptest::collection::vec(0.0f64..1e4, 1..300),
        ) {
            let mut h = LogHistogram::latency_ms();
            for &v in &vals {
                h.record(v);
            }
            prop_assert_eq!(h.len(), vals.len() as u64);
            prop_assert_eq!(h.counts.iter().sum::<u64>(), vals.len() as u64);
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            prop_assert!((h.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(h.max(), Some(hi));
            // count_over is monotone non-increasing and hits the exact
            // endpoints.
            prop_assert_eq!(h.count_over(hi), 0);
            let mut prev = h.len();
            for i in 0..20u32 {
                let t = f64::from(i) * 500.0;
                let c = h.count_over(t);
                prop_assert!(c <= prev);
                prev = c;
            }
        }
    }

    proptest! {
        #[test]
        fn p2_stays_within_range(vals in proptest::collection::vec(0.0f64..1e4, 6..500)) {
            let mut p2 = P2Quantile::new(0.95);
            for &v in &vals {
                p2.observe(v);
            }
            let est = p2.estimate().unwrap();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo && est <= hi, "est={est} not in [{lo},{hi}]");
        }

        #[test]
        fn histogram_conserves_mass(vals in proptest::collection::vec(-10.0f64..500.0, 0..300)) {
            let mut h = Histogram::new(20.0, 12);
            for &v in &vals {
                h.record(v);
            }
            let binned: u64 = h.bins().map(|(_, c)| c).sum();
            prop_assert_eq!(binned + h.overflow(), vals.len() as u64);
        }
    }
}
