//! Latency metrics: exact and streaming quantiles, reduction ratios,
//! the paper's remediation rate, and service-time histograms.

/// Exact nearest-rank `p`-quantile of a sample (copies and sorts).
///
/// # Panics
/// Panics if `xs` is empty or `p ∉ [0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
    v[rank]
}

/// Tail-latency reduction ratio `baseline / improved` (the Y-axis of
/// Figures 3a and 6; > 1 means the policy helped).
///
/// # Panics
/// Panics if `improved ≤ 0`.
pub fn reduction_ratio(baseline: f64, improved: f64) -> f64 {
    assert!(improved > 0.0, "improved latency must be positive");
    baseline / improved
}

/// The paper's *remediation rate* (§5.1, Figure 3b): among queries that
/// actually reissued, the fraction whose primary would have missed the
/// tail-latency target `t` but whose reissue responded in time, i.e.
/// `Pr(X > t ∧ Y < t − d)` estimated over issued reissues.
///
/// `pairs` holds `(primary, reissue)` response times of reissued
/// queries (reissue measured from its own dispatch at `d`).
/// Returns 0 for an empty sample.
pub fn remediation_rate(pairs: &[(f64, f64)], t: f64, d: f64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let remedied = pairs.iter().filter(|&&(x, y)| x > t && y < t - d).count();
    remedied as f64 / pairs.len() as f64
}

/// Streaming quantile estimator using the P² algorithm
/// (Jain & Chlamtac, 1985).
///
/// Tracks a single quantile in `O(1)` space without storing samples —
/// used for online monitoring in long simulations where keeping every
/// response time would dominate memory. Exact for ≤ 5 observations,
/// approximate beyond.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    /// Panics if `p ∉ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            self.initial.push(x);
            if self.count == 5 {
                self.initial.sort_by(f64::total_cmp);
                for i in 0..5 {
                    self.q[i] = self.initial[i];
                }
            }
            return;
        }

        // Find cell k and update extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers with the P² parabolic update.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let s = d.signum();
                let qp = self.parabolic(i, s);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, s)
                };
                self.n[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (qm, q0, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n0, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q0 + s / (np - nm)
            * ((n0 - nm + s) * (qp - q0) / (np - n0) + (np - n0 - s) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + s * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate; `None` before any observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut v = self.initial.clone();
            v.sort_by(f64::total_cmp);
            let rank = ((self.p * v.len() as f64).ceil() as usize).clamp(1, v.len()) - 1;
            return Some(v[rank]);
        }
        Some(self.q[2])
    }
}

/// A fixed-width histogram for service-time distributions (Figure 9
/// uses 20 ms bins with a log-scale count axis).
#[derive(Clone, Debug)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` each; values
    /// beyond `bins * bin_width` land in an overflow bucket.
    ///
    /// # Panics
    /// Panics if `bin_width ≤ 0` or `bins == 0`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a value (negative values clamp into the first bin).
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        let idx = (v.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates `(bin_midpoint, count)` for every regular bin.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| ((i as f64 + 0.5) * self.bin_width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantile_basic() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.95), 95.0);
        assert_eq!(quantile(&xs, 0.99), 99.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn reduction_ratio_basic() {
        assert!((reduction_ratio(900.0, 400.0) - 2.25).abs() < 1e-12);
        assert!((reduction_ratio(100.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remediation_counts_saves_only() {
        let t = 10.0;
        let d = 2.0;
        let pairs = [
            (12.0, 5.0), // x > t, y < 8  -> remedied
            (12.0, 9.0), // x > t, y ≥ 8  -> reissue too slow
            (7.0, 1.0),  // x ≤ t          -> reissue unnecessary
            (15.0, 7.9), // remedied
        ];
        assert!((remediation_rate(&pairs, t, d) - 0.5).abs() < 1e-12);
        assert_eq!(remediation_rate(&[], t, d), 0.0);
    }

    #[test]
    fn p2_small_samples_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        for v in [5.0, 1.0, 3.0] {
            p2.observe(v);
        }
        assert_eq!(p2.estimate(), Some(3.0)); // exact median of 3
    }

    #[test]
    fn p2_approximates_uniform_median() {
        let mut p2 = P2Quantile::new(0.5);
        // Deterministic low-discrepancy stream over (0,1).
        let mut x = 0.5f64;
        for _ in 0..100_000 {
            x = (x + 0.6180339887498949) % 1.0;
            p2.observe(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "est={est}");
    }

    #[test]
    fn p2_approximates_p99_of_linear_ramp() {
        let mut p2 = P2Quantile::new(0.99);
        // Shuffled-ish ramp 0..10000 via multiplicative hashing.
        for i in 0..10_000u64 {
            let v = (i.wrapping_mul(2654435761) % 10_000) as f64;
            p2.observe(v);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 9900.0).abs() < 150.0, "est={est}");
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(20.0, 5); // covers [0,100)
        for v in [0.0, 19.9, 20.0, 55.0, 99.9, 100.0, 1000.0, -3.0] {
            h.record(v);
        }
        let counts: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![3, 1, 1, 0, 1]); // -3 clamps into bin 0
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
        let mids: Vec<f64> = h.bins().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![10.0, 30.0, 50.0, 70.0, 90.0]);
    }

    proptest! {
        #[test]
        fn p2_stays_within_range(vals in proptest::collection::vec(0.0f64..1e4, 6..500)) {
            let mut p2 = P2Quantile::new(0.95);
            for &v in &vals {
                p2.observe(v);
            }
            let est = p2.estimate().unwrap();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo && est <= hi, "est={est} not in [{lo},{hi}]");
        }

        #[test]
        fn histogram_conserves_mass(vals in proptest::collection::vec(-10.0f64..500.0, 0..300)) {
            let mut h = Histogram::new(20.0, 12);
            for &v in &vals {
                h.record(v);
            }
            let binned: u64 = h.bins().map(|(_, c)| c).sum();
            prop_assert_eq!(binned + h.overflow(), vals.len() as u64);
        }
    }
}
