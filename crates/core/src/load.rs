//! Client-side load sensing for utilization-aware hedging.
//!
//! Redundancy's benefit flips sign with load: hedging rescues
//! stragglers while the cluster has slack, and *creates* stragglers
//! once it is saturated (Shah et al., "When Do Redundant Requests
//! Reduce Latency?"). The [`crate::online::OnlineAdapter`] optimizes
//! `(d, q)` from latency samples alone, so without a load signal it
//! keeps reissuing into the very queues that produce the latencies it
//! observes — positive feedback that can hedge a saturated cluster
//! into collapse.
//!
//! This module closes that loop from the *client side only* — no
//! server cooperation, no configured capacity number:
//!
//! * [`LoadSignal`] — an aggregate estimator the serving client feeds
//!   on every dispatch and completion. It maintains an offered-rate
//!   EWMA `λ̂` over inter-dispatch gaps (counting **every attempt**,
//!   reissues included, so hedging's own load contribution is priced
//!   in), an in-flight EWMA, a latency EWMA `W̄`, and a mean-service
//!   estimate `S̄` calibrated while the cluster is visibly unqueued.
//!   [`LoadSignal::utilization`] combines them into an estimate
//!   `ρ̂ = max(λ̂·S̄/n, 1 − S̄/W̄)` — a throughput-side and a
//!   queueing-delay-side estimator whose biases point in opposite
//!   directions (for an M/M/1, `1 − S/W` *equals* ρ).
//! * [`LoadShaper`] — the damping rule that turns `ρ̂` into an
//!   effective reissue budget multiplier: full budget below
//!   [`LoadShaper::rho_knee`], zero at [`LoadShaper::rho_max`], a
//!   power-law ramp in between. Running the optimizer at the damped
//!   budget both shrinks `q` and deepens `d` (a smaller budget buys a
//!   deeper optimal delay), recovering static-optimal behavior at both
//!   ends of a load sweep.
//!
//! ## Estimator details and failure modes
//!
//! The latency EWMA `W̄` is fed the **median of the last three raw
//! samples**, not the samples themselves: interactive workloads are
//! heavy-tailed (the §6.2 trace carries a 1-in-500 "query of death"
//! ~60× the mean), and a single monster completion fed straight into a
//! mean-style EWMA inflates `W̄` — and through it both `S̄` and `ρ̂` —
//! for dozens of subsequent samples, reading a mostly-idle cluster as
//! saturated. The median-of-3 rejects any isolated spike outright,
//! while genuine queueing (which raises *every* sample) passes through
//! with at most two samples of lag. The filtered `W̄` slightly
//! under-weights true heavy-tail service mass, biasing `ρ̂` low — the
//! keep-hedging side, which is exactly where heavy tails want hedging.
//!
//! The mean service time `S̄` is the one quantity a client cannot read
//! off a saturated cluster: observed latency is service *plus*
//! queueing. `S̄` therefore tracks the latency EWMA only while the
//! in-flight EWMA says queues are essentially empty (fewer than
//! [`UNQUEUED_PER_REPLICA`] outstanding queries per replica), and is
//! otherwise frozen except for downward snaps (`S̄` may never exceed an
//! observed `W̄`). Consequences, both in the safe direction:
//!
//! * a run that *starts* saturated calibrates `S̄` from queued
//!   latencies, over-estimates ρ̂ and over-damps — hedging stays off
//!   until the overload clears, which is the correct failure mode;
//! * a genuine service-time slowdown under load reads as queueing
//!   until load drops enough to recalibrate.
//!
//! All methods take `&self` and are thread-safe; the estimator state
//! sits behind one short-critical-section mutex (the serving client
//! already serializes per-completion on its policy lock) with the
//! current ρ̂ cached in an atomic so readers never block.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// EWMA weight for completion latency (`W̄`).
const LATENCY_ALPHA: f64 = 0.05;
/// EWMA weight for inter-dispatch gaps (the offered-rate estimate).
const RATE_ALPHA: f64 = 0.02;
/// EWMA weight for the in-flight level, sampled at dispatch and
/// completion events.
const INFLIGHT_ALPHA: f64 = 0.05;
/// EWMA weight for the mean-service estimate `S̄` while calibrating
/// (tracking `W̄` during unqueued stretches).
const SERVICE_ALPHA: f64 = 0.1;
/// In-flight queries per replica below which the cluster is treated as
/// unqueued, so observed latency ≈ service time and `S̄` may track
/// `W̄`. Above it `S̄` freezes (downward snaps excepted).
const UNQUEUED_PER_REPLICA: f64 = 0.45;
/// Completions before [`LoadSignal::utilization`] reports a non-zero
/// estimate (an uncalibrated `S̄` would damp on noise).
const WARMUP_COMPLETIONS: u64 = 32;

/// Damping rule mapping estimated utilization ρ̂ to a multiplier on
/// the reissue budget (see [`LoadShaper::damping`]).
///
/// `damping(ρ̂)` is `1` at or below `rho_knee`, `0` at or above
/// `rho_max`, and `((rho_max − ρ̂) / (rho_max − rho_knee))^gamma` in
/// between — continuous, monotone non-increasing, and fully off before
/// the estimate reaches saturation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadShaper {
    /// Utilization at or below which the full budget applies.
    pub rho_knee: f64,
    /// Utilization at or above which hedging is fully damped (budget
    /// multiplier 0).
    pub rho_max: f64,
    /// Curvature of the ramp between the two (≥ 1 damps early).
    pub gamma: f64,
}

impl Default for LoadShaper {
    /// Full budget through ρ̂ ≤ 0.55, off at ρ̂ ≥ 0.95, quadratic ramp
    /// between — at ρ̂ = 0.75 the budget is quartered.
    fn default() -> Self {
        LoadShaper {
            rho_knee: 0.55,
            rho_max: 0.95,
            gamma: 2.0,
        }
    }
}

impl LoadShaper {
    /// The budget multiplier at estimated utilization `rho` (clamped
    /// to `[0, 1]` first). Monotone non-increasing in `rho`.
    ///
    /// # Panics
    /// Panics if the shaper is misconfigured (`rho_knee ≥ rho_max`,
    /// out-of-range bounds, or non-positive `gamma`).
    pub fn damping(&self, rho: f64) -> f64 {
        self.validate();
        let rho = if rho.is_nan() {
            0.0
        } else {
            rho.clamp(0.0, 1.0)
        };
        if rho <= self.rho_knee {
            1.0
        } else if rho >= self.rho_max {
            0.0
        } else {
            ((self.rho_max - rho) / (self.rho_max - self.rho_knee)).powf(self.gamma)
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.rho_knee)
                && self.rho_max <= 1.0
                && self.rho_knee < self.rho_max,
            "need 0 <= rho_knee < rho_max <= 1, got knee {} max {}",
            self.rho_knee,
            self.rho_max
        );
        assert!(
            self.gamma > 0.0 && self.gamma.is_finite(),
            "gamma must be positive and finite, got {}",
            self.gamma
        );
    }
}

/// A point-in-time view of every estimator inside a [`LoadSignal`]
/// (see [`LoadSignal::snapshot`]). Uncalibrated estimators read as
/// `NaN`.
#[derive(Clone, Copy, Debug)]
pub struct LoadSnapshot {
    /// Estimated offered attempt rate (dispatches/s, reissues
    /// included).
    pub offered_qps: f64,
    /// Queries currently outstanding.
    pub in_flight: usize,
    /// EWMA of the in-flight level.
    pub in_flight_ewma: f64,
    /// EWMA of completion latency `W̄`, ms.
    pub latency_ewma_ms: f64,
    /// Calibrated mean-service estimate `S̄`, ms.
    pub service_est_ms: f64,
    /// The combined utilization estimate ρ̂ in `[0, 1]` (0 during
    /// warm-up).
    pub utilization: f64,
    /// Completions observed so far.
    pub completions: u64,
    /// Dispatches observed so far (attempts: primaries + reissues).
    pub dispatches: u64,
}

#[derive(Debug)]
struct SignalState {
    /// Nanos-since-anchor of the previous dispatch, if any.
    last_dispatch_nanos: Option<u64>,
    /// EWMA of inter-dispatch gaps, µs (`NaN` until two dispatches).
    gap_ewma_us: f64,
    /// EWMA of completion latency, ms (`NaN` until one completion).
    latency_ewma_ms: f64,
    /// Ring of the last up-to-3 raw latency samples, ms: the EWMA is
    /// fed the *median* of this window, so one heavy-tailed outlier (a
    /// "query of death" 60× the mean) never reaches `W̄` — while
    /// sustained elevation (real queueing raises *every* sample)
    /// passes through with at most two samples of lag.
    recent_ms: [f64; 3],
    /// Calibrated mean-service estimate, ms (`NaN` until one
    /// completion).
    service_est_ms: f64,
    /// EWMA of the in-flight level at dispatch/completion events.
    in_flight_ewma: f64,
    completions: u64,
    dispatches: u64,
}

/// Aggregate client-side load estimator (see the module docs for the
/// estimator design). Feed it [`note_dispatch`](Self::note_dispatch)
/// for every attempt put on the wire, and bracket each *query* with
/// [`query_start`](Self::query_start) /
/// [`query_end`](Self::query_end); read
/// [`utilization`](Self::utilization) any time.
#[derive(Debug)]
pub struct LoadSignal {
    /// Capacity units the offered rate is normalized by (replica
    /// count).
    replicas: usize,
    /// Wall-clock anchor for the dispatch clock.
    anchor: Instant,
    /// Queries outstanding right now (started, not yet ended).
    in_flight: AtomicUsize,
    /// Cached ρ̂ (f64 bits) so readers never take the state lock.
    rho_bits: AtomicU64,
    state: Mutex<SignalState>,
}

impl LoadSignal {
    /// Creates a signal normalizing offered load by `replicas`
    /// capacity units.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    pub fn new(replicas: usize) -> Self {
        assert!(replicas > 0, "need at least one replica");
        LoadSignal {
            replicas,
            anchor: Instant::now(),
            in_flight: AtomicUsize::new(0),
            rho_bits: AtomicU64::new(0.0f64.to_bits()),
            state: Mutex::new(SignalState {
                last_dispatch_nanos: None,
                gap_ewma_us: f64::NAN,
                latency_ewma_ms: f64::NAN,
                recent_ms: [f64::NAN; 3],
                service_est_ms: f64::NAN,
                in_flight_ewma: 0.0,
                completions: 0,
                dispatches: 0,
            }),
        }
    }

    /// Capacity units this signal normalizes by.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Records one attempt put on the wire — call for the primary
    /// *and* every reissue, so the rate estimate prices in hedging's
    /// own load contribution.
    pub fn note_dispatch(&self) {
        let nanos = self.anchor.elapsed().as_nanos() as u64;
        self.note_dispatch_at(nanos);
    }

    fn note_dispatch_at(&self, nanos: u64) {
        let mut st = self.state.lock().unwrap();
        if let Some(prev) = st.last_dispatch_nanos {
            let gap_us = nanos.saturating_sub(prev) as f64 / 1e3;
            st.gap_ewma_us = ewma(st.gap_ewma_us, gap_us, RATE_ALPHA);
        }
        st.last_dispatch_nanos = Some(nanos);
        st.dispatches += 1;
        let inflight = self.in_flight.load(Ordering::Relaxed) as f64;
        st.in_flight_ewma = ewma_init0(st.in_flight_ewma, inflight, INFLIGHT_ALPHA);
        self.publish_rho(&st);
    }

    /// Marks one query outstanding (call once per `execute`, before
    /// the primary dispatch).
    pub fn query_start(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one query resolved. Pass its end-to-end latency for a
    /// completion, `None` for a transport failure (which still
    /// releases the in-flight slot but carries no latency sample).
    ///
    /// # Panics
    /// Panics on a non-finite or negative latency.
    pub fn query_end(&self, latency_ms: Option<f64>) {
        // Saturating: a stray end without a start must not wrap.
        let _ = self
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
        let mut st = self.state.lock().unwrap();
        let inflight = self.in_flight.load(Ordering::Relaxed) as f64;
        st.in_flight_ewma = ewma_init0(st.in_flight_ewma, inflight, INFLIGHT_ALPHA);
        if let Some(ms) = latency_ms {
            assert!(ms.is_finite() && ms >= 0.0, "latency must be finite, >= 0");
            st.completions += 1;
            // Median-of-3 pre-filter: an isolated spike (heavy-tailed
            // service, not load) is rejected outright; genuine
            // queueing raises every sample and passes the median.
            // With one sample the median is the sample; with two it is
            // their min (biasing low — the safe, keep-hedging side).
            let slot = (st.completions as usize - 1) % 3;
            st.recent_ms[slot] = ms;
            let med = median3(st.recent_ms);
            st.latency_ewma_ms = ewma(st.latency_ewma_ms, med, LATENCY_ALPHA);
            // Calibrate S̄ only while queues are visibly empty;
            // otherwise W̄ includes queueing delay and tracking it
            // would launder congestion into the capacity estimate.
            // Downward snaps are always allowed: mean service can
            // never exceed mean observed latency.
            let unqueued = st.in_flight_ewma <= UNQUEUED_PER_REPLICA * self.replicas as f64;
            if st.service_est_ms.is_nan() || unqueued {
                st.service_est_ms = ewma(st.service_est_ms, st.latency_ewma_ms, SERVICE_ALPHA);
            } else if st.latency_ewma_ms < st.service_est_ms {
                st.service_est_ms = st.latency_ewma_ms;
            }
        }
        self.publish_rho(&st);
    }

    /// The current utilization estimate ρ̂ ∈ `[0, 1]` — `0` until
    /// [`WARMUP_COMPLETIONS`] completions have calibrated the
    /// estimators. Lock-free read of the cached value.
    pub fn utilization(&self) -> f64 {
        f64::from_bits(self.rho_bits.load(Ordering::Relaxed))
    }

    /// Queries currently outstanding.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// A consistent snapshot of every estimator, for reporting.
    pub fn snapshot(&self) -> LoadSnapshot {
        let st = self.state.lock().unwrap();
        LoadSnapshot {
            offered_qps: if st.gap_ewma_us.is_nan() {
                f64::NAN
            } else {
                1e6 / st.gap_ewma_us.max(1e-3)
            },
            in_flight: self.in_flight.load(Ordering::Relaxed),
            in_flight_ewma: st.in_flight_ewma,
            latency_ewma_ms: st.latency_ewma_ms,
            service_est_ms: st.service_est_ms,
            utilization: self.utilization(),
            completions: st.completions,
            dispatches: st.dispatches,
        }
    }

    /// Recomputes ρ̂ from the locked state and publishes it.
    fn publish_rho(&self, st: &SignalState) {
        let rho = self.estimate_rho(st);
        self.rho_bits.store(rho.to_bits(), Ordering::Relaxed);
    }

    fn estimate_rho(&self, st: &SignalState) -> f64 {
        if st.completions < WARMUP_COMPLETIONS
            || st.gap_ewma_us.is_nan()
            || st.service_est_ms.is_nan()
        {
            return 0.0;
        }
        let qps = 1e6 / st.gap_ewma_us.max(1e-3);
        // Throughput side: offered attempt-rate × mean service over
        // capacity. Exact when S̄ is calibrated; over-estimates (safe)
        // when S̄ absorbed queueing delay.
        let rho_rate = qps * (st.service_est_ms / 1e3) / self.replicas as f64;
        // Queueing-delay side: for an M/M/1, W = S/(1−ρ), so
        // 1 − S/W = ρ exactly; under-estimates when S̄ is inflated —
        // the two biases point in opposite directions, so take the
        // max.
        let rho_wait = if st.latency_ewma_ms > 0.0 {
            1.0 - st.service_est_ms / st.latency_ewma_ms
        } else {
            0.0
        };
        rho_rate.max(rho_wait).clamp(0.0, 1.0)
    }
}

/// EWMA step seeding from the first sample.
fn ewma(cur: f64, sample: f64, alpha: f64) -> f64 {
    if cur.is_nan() {
        sample
    } else {
        cur + alpha * (sample - cur)
    }
}

/// EWMA step for estimators that start at a meaningful zero.
fn ewma_init0(cur: f64, sample: f64, alpha: f64) -> f64 {
    cur + alpha * (sample - cur)
}

/// Median of the filled (non-`NaN`) portion of the 3-slot latency
/// ring: one sample is itself, two is their min (biasing low — the
/// keep-hedging side), three is the true median.
fn median3(w: [f64; 3]) -> f64 {
    let mut v: Vec<f64> = w.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    match v.len() {
        1 => v[0],
        2 => v[0],
        _ => v[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `n` synthetic queries through the signal: one dispatch
    /// every `gap_us`, each completing `latency_ms` later, never more
    /// than one in flight (so the signal calibrates as unqueued).
    fn drive_sequential(sig: &LoadSignal, n: usize, gap_us: u64, latency_ms: f64) {
        let mut nanos = 0u64;
        for _ in 0..n {
            sig.query_start();
            sig.note_dispatch_at(nanos);
            sig.query_end(Some(latency_ms));
            nanos += gap_us * 1_000;
        }
    }

    #[test]
    fn warmup_reports_zero() {
        let sig = LoadSignal::new(3);
        assert_eq!(sig.utilization(), 0.0);
        drive_sequential(&sig, (WARMUP_COMPLETIONS - 2) as usize, 1_000, 1.0);
        assert_eq!(sig.utilization(), 0.0, "still warming up");
    }

    #[test]
    fn low_load_estimates_near_true_utilization() {
        // 3 replicas, 1 ms service, one dispatch per ms → ρ = 1/3.
        let sig = LoadSignal::new(3);
        drive_sequential(&sig, 500, 1_000, 1.0);
        let rho = sig.utilization();
        assert!(
            (rho - 1.0 / 3.0).abs() < 0.08,
            "expected ρ̂ ≈ 0.33, got {rho}"
        );
        let snap = sig.snapshot();
        assert!((snap.offered_qps - 1_000.0).abs() < 50.0);
        assert!((snap.service_est_ms - 1.0).abs() < 0.1);
        assert_eq!(snap.in_flight, 0);
    }

    #[test]
    fn saturation_drives_estimate_up_without_recalibrating_service() {
        let sig = LoadSignal::new(3);
        // Calibrate at low load: S̄ ≈ 1 ms.
        drive_sequential(&sig, 300, 1_000, 1.0);
        // Saturate: dispatches every 350 µs (offered ρ ≈ 0.95) with
        // queued latencies of 8 ms and a deep in-flight backlog.
        let mut nanos = 300 * 1_000_000u64;
        for _ in 0..16 {
            sig.query_start();
        }
        for _ in 0..600 {
            sig.query_start();
            sig.note_dispatch_at(nanos);
            sig.query_end(Some(8.0));
            nanos += 350 * 1_000;
        }
        let rho = sig.utilization();
        assert!(rho > 0.8, "saturated estimate should be high, got {rho}");
        let snap = sig.snapshot();
        assert!(
            snap.service_est_ms < 2.0,
            "S̄ must not absorb queueing delay, got {} ms",
            snap.service_est_ms
        );
        // Load falls again: the estimate must come back down.
        for _ in 0..616 {
            sig.query_end(None);
        }
        let mut nanos = nanos + 1_000_000;
        for _ in 0..600 {
            sig.query_start();
            sig.note_dispatch_at(nanos);
            sig.query_end(Some(1.0));
            nanos += 1_000 * 1_000;
        }
        let rho = sig.utilization();
        assert!(rho < 0.55, "estimate must recover after the peak: {rho}");
    }

    #[test]
    fn isolated_spikes_do_not_inflate_the_estimate() {
        // 1-in-50 monster completions 60× the mean, cluster otherwise
        // at ρ = 1/3: the median-of-3 filter must keep ρ̂ near truth
        // instead of reading the heavy tail as saturation.
        let sig = LoadSignal::new(3);
        let mut nanos = 0u64;
        for i in 0..1_000 {
            sig.query_start();
            sig.note_dispatch_at(nanos);
            let ms = if i % 50 == 0 { 60.0 } else { 1.0 };
            sig.query_end(Some(ms));
            nanos += 1_000 * 1_000;
        }
        let rho = sig.utilization();
        assert!(
            (rho - 1.0 / 3.0).abs() < 0.1,
            "heavy-tailed spikes must not inflate ρ̂: got {rho}"
        );
        let snap = sig.snapshot();
        assert!(
            snap.latency_ewma_ms < 2.0,
            "W̄ must reject isolated spikes, got {} ms",
            snap.latency_ewma_ms
        );
    }

    #[test]
    fn failures_release_in_flight_without_latency_samples() {
        let sig = LoadSignal::new(2);
        sig.query_start();
        sig.query_start();
        assert_eq!(sig.in_flight(), 2);
        sig.query_end(None);
        sig.query_end(None);
        sig.query_end(None); // stray end must not wrap
        assert_eq!(sig.in_flight(), 0);
        assert_eq!(sig.snapshot().completions, 0);
    }

    #[test]
    fn shaper_damping_shape() {
        let s = LoadShaper::default();
        assert_eq!(s.damping(0.0), 1.0);
        assert_eq!(s.damping(s.rho_knee), 1.0);
        assert_eq!(s.damping(s.rho_max), 0.0);
        assert_eq!(s.damping(1.0), 0.0);
        assert_eq!(s.damping(f64::NAN), 1.0, "NaN reads as unloaded");
        // Quadratic ramp: at the midpoint the multiplier is 1/4.
        let mid = (s.rho_knee + s.rho_max) / 2.0;
        assert!((s.damping(mid) - 0.25).abs() < 1e-12);
        // Monotone non-increasing across the whole range.
        let mut prev = 1.0;
        for i in 0..=100 {
            let d = s.damping(i as f64 / 100.0);
            assert!(d <= prev + 1e-12, "damping must be monotone");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "rho_knee < rho_max")]
    fn shaper_rejects_inverted_bounds() {
        let _ = LoadShaper {
            rho_knee: 0.9,
            rho_max: 0.5,
            gamma: 2.0,
        }
        .damping(0.5);
    }
}
