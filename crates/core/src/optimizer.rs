//! `ComputeOptimalSingleR` — the paper's data-driven parameter search
//! (Figure 1), in both the independent (§4.1) and correlation-aware
//! (§4.2) variants.
//!
//! Given response-time logs, the optimizer finds the SingleR policy
//! `(d, q)` minimizing the `k`-th percentile tail latency subject to a
//! reissue budget `B`. The search sweeps candidate reissue delays `d`
//! upward through the primary samples while the achievable tail latency
//! `t` sweeps downward — a two-pointer scan whose CDF evaluations are
//! all monotone, so finger cursors make the whole search
//! `Θ(N + sort(N))` (independent) or `Θ(N log N)` (correlated, via a
//! Fenwick sweep over reissue-time ranks).

use crate::ecdf::Ecdf;
use rangequery::{FenwickTree, FingerCursor};

/// The result of `ComputeOptimalSingleR`: the optimal SingleR policy
/// parameters along with the optimizer's own view of the policy.
#[derive(Clone, Copy, Debug)]
pub struct OptimalSingleR {
    /// Optimal reissue delay `d*`.
    pub delay: f64,
    /// Optimal reissue probability `q = min(1, B / Pr(X ≥ d*))`.
    ///
    /// Note: Figure 1 line 13 of the paper prints `q ← 1 −
    /// DiscreteCDF(RX, d*)`, i.e. `Pr(X ≥ d*)` — the *outstanding
    /// fraction*, not a probability satisfying the budget Equation (4).
    /// That line is a typo (the budget equation and
    /// `SingleRSuccessRate` line 18 both use `B / Pr(X > d)`); we return
    /// the Equation-(4) value.
    pub probability: f64,
    /// Fraction of primary requests still outstanding at `d*`
    /// (`Pr(X ≥ d*)`) — the quantity plotted in Figure 3c.
    pub outstanding_at_delay: f64,
    /// The predicted `k`-th percentile tail latency under the policy.
    pub predicted_latency: f64,
    /// Expected reissue rate `q · Pr(X ≥ d*)`, always ≤ the requested
    /// budget (up to floating-point rounding).
    pub budget_used: f64,
    /// The predicted success rate at `predicted_latency` (≥ `k` unless
    /// the budget is too small to reach `k` at all).
    pub predicted_success: f64,
}

impl OptimalSingleR {
    /// The policy as a [`crate::policy::ReissuePolicy`].
    pub fn policy(&self) -> crate::policy::ReissuePolicy {
        crate::policy::ReissuePolicy::single_r(self.delay, self.probability)
    }
}

fn validate_inputs(rx: &[f64], k: f64, budget: f64) {
    assert!(!rx.is_empty(), "need at least one primary sample");
    assert!((0.0..1.0).contains(&k), "percentile k must be in [0,1)");
    assert!(
        (0.0..=1.0).contains(&budget),
        "budget must be in [0,1], got {budget}"
    );
    assert!(rx.iter().all(|v| v.is_finite()), "samples must be finite");
}

/// `ComputeOptimalSingleR(RX, RY, k, B)` — Figure 1 of the paper.
///
/// * `rx` — response-time samples of primary requests;
/// * `ry` — response-time samples of reissue requests (measured from the
///   reissue dispatch); pass `rx` again if reissues behave identically;
/// * `k`  — target percentile in `[0, 1)`, e.g. `0.99`;
/// * `budget` — maximum expected reissue rate `B ∈ [0, 1]`.
///
/// Returns the optimal `(d*, q)` and the predicted tail latency. The
/// primary/reissue response times are treated as independent; see
/// [`compute_optimal_single_r_correlated`] for the §4.2 variant.
///
/// Runs in `Θ(N + sort(N))`: both sweeps are monotone, so every
/// `DiscreteCDF` evaluation is a finger-cursor step.
///
/// # Panics
/// Panics on empty/non-finite samples or out-of-range `k`/`budget`.
pub fn compute_optimal_single_r(rx: &[f64], ry: &[f64], k: f64, budget: f64) -> OptimalSingleR {
    validate_inputs(rx, k, budget);
    assert!(!ry.is_empty(), "need at least one reissue sample");
    assert!(ry.iter().all(|v| v.is_finite()), "samples must be finite");

    let mut xs = rx.to_vec();
    xs.sort_by(f64::total_cmp);
    let mut ys = ry.to_vec();
    ys.sort_by(f64::total_cmp);

    let n = xs.len();
    let mut cx_t = FingerCursor::new(&xs); // Pr(X ≤ t): t non-increasing
    let mut cx_d = FingerCursor::new(&xs); // Pr(X > d): d non-decreasing
    let mut cy = FingerCursor::new(&ys); //   Pr(Y ≤ t−d): t−d non-increasing

    // SingleRSuccessRate (Figure 1, lines 15–20), with q clamped to 1:
    // for d beyond the B-quantile the un-clamped q = B/Pr(X>d) exceeds 1,
    // which would credit the policy with more reissues than exist.
    let mut success = |t: f64, d: f64| -> f64 {
        let p_x_le_t = cx_t.cdf(t);
        let p_x_gt_d = 1.0 - cx_d.cdf(d);
        let p_y = cy.cdf(t - d);
        let q = if p_x_gt_d > 0.0 {
            (budget / p_x_gt_d).min(1.0)
        } else {
            0.0
        };
        p_x_le_t + q * (1.0 - p_x_le_t) * p_y
    };

    // Lines 1–3: trivial starting policy.
    let mut lo = 0usize; // index of min{Q}
    let mut hi = n - 1; // index of max{Q} / current t
    let mut d_star = xs[0];
    let mut t = xs[n - 1];

    // Lines 4–12: sweep d upward, shrinking t while the success rate
    // stays above k.
    while lo <= hi {
        let d = xs[lo];
        lo += 1;
        if d > t {
            break;
        }
        let mut alpha = success(t, d);
        while alpha > k && t > d && hi > 0 {
            hi -= 1;
            t = xs[hi];
            d_star = d;
            alpha = success(t, d);
        }
        if lo > hi {
            break;
        }
    }

    finish(&xs, k, budget, d_star, t, &mut |t, d| success(t, d))
}

/// Shared tail of both optimizer variants: computes the returned policy
/// record for the final `(d*, t)`.
fn finish(
    xs: &[f64],
    _k: f64,
    budget: f64,
    d_star: f64,
    t: f64,
    success: &mut dyn FnMut(f64, f64) -> f64,
) -> OptimalSingleR {
    let ecdf = Ecdf::from_sorted(xs.to_vec());
    let outstanding = ecdf.sf_weak(d_star);
    let probability = if budget <= 0.0 {
        0.0
    } else if outstanding > 0.0 {
        (budget / outstanding).min(1.0)
    } else {
        1.0
    };
    OptimalSingleR {
        delay: d_star,
        probability,
        outstanding_at_delay: outstanding,
        predicted_latency: t,
        budget_used: probability * outstanding,
        predicted_success: success(t, d_star),
    }
}

/// The correlation-aware `ComputeOptimalSingleR` of §4.2.
///
/// Takes the marginal primary samples `rx` plus joint samples `pairs =
/// (tx, ty)` — the response times of a query's primary and reissue
/// requests — and replaces `Pr(Y ≤ t−d)` with the conditional
/// `Pr(Y ≤ t−d | X > t)` in the success-rate computation, so positively
/// correlated slowness (slow primaries predict slow reissues) is priced
/// into the policy.
///
/// Implementation: as `t` sweeps downward the active set `{i : txᵢ > t}`
/// only grows, so the pairs are inserted into a Fenwick tree over
/// reissue-time ranks as their primaries cross `t`; each conditional CDF
/// evaluation is then a prefix sum. Total `Θ(N log N)` — matching the
/// paper's bound for the 2-D range-query formulation (the paper's
/// general structure, [`rangequery::MergeSortTree`], is what this sweep
/// is property-tested against).
///
/// When no pair has `tx > t` the conditional is undefined; the success
/// term then falls back to 0 (a reissue cannot be credited with helping
/// a tail no sample reaches).
///
/// # Panics
/// Panics on empty/non-finite inputs or out-of-range `k`/`budget`.
pub fn compute_optimal_single_r_correlated(
    rx: &[f64],
    pairs: &[(f64, f64)],
    k: f64,
    budget: f64,
) -> OptimalSingleR {
    validate_inputs(rx, k, budget);
    assert!(
        !pairs.is_empty(),
        "need at least one (primary, reissue) pair"
    );
    assert!(
        pairs.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
        "pairs must be finite"
    );

    let mut xs = rx.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len();

    // Pairs sorted by primary time descending: as t decreases, pairs
    // whose tx > t are activated in order.
    let mut by_x: Vec<(f64, f64)> = pairs.to_vec();
    by_x.sort_by(|a, b| b.0.total_cmp(&a.0));
    // Rank space for reissue times.
    let mut y_sorted: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    y_sorted.sort_by(f64::total_cmp);

    let mut fenwick = FenwickTree::new(y_sorted.len());
    let mut next_pair = 0usize; // pairs[..next_pair] are active (tx > t)

    let mut cx_t = FingerCursor::new(&xs);
    let mut cx_d = FingerCursor::new(&xs);

    let mut success = |t: f64, d: f64| -> f64 {
        let p_x_le_t = cx_t.cdf(t);
        let p_x_gt_d = 1.0 - cx_d.cdf(d);
        // Activate pairs with tx > t. t is non-increasing across all
        // calls, so this pointer only advances.
        while next_pair < by_x.len() && by_x[next_pair].0 > t {
            let rank = y_sorted.partition_point(|&y| y < by_x[next_pair].1);
            fenwick.add(rank.min(y_sorted.len() - 1), 1);
            next_pair += 1;
        }
        let denom = fenwick.total();
        let p_y = if denom == 0 {
            0.0
        } else {
            // Strict Pr(Y < t−d | X > t), consistent with DiscreteCDF.
            let below = y_sorted.partition_point(|&y| y < t - d);
            fenwick.prefix_sum(below) as f64 / denom as f64
        };
        let q = if p_x_gt_d > 0.0 {
            (budget / p_x_gt_d).min(1.0)
        } else {
            0.0
        };
        p_x_le_t + q * (1.0 - p_x_le_t) * p_y
    };

    let mut lo = 0usize;
    let mut hi = n - 1;
    let mut d_star = xs[0];
    let mut t = xs[n - 1];

    while lo <= hi {
        let d = xs[lo];
        lo += 1;
        if d > t {
            break;
        }
        let mut alpha = success(t, d);
        while alpha > k && t > d && hi > 0 {
            hi -= 1;
            t = xs[hi];
            d_star = d;
            alpha = success(t, d);
        }
        if lo > hi {
            break;
        }
    }

    finish(&xs, k, budget, d_star, t, &mut |t, d| success(t, d))
}

/// Predicts the `k`-th percentile tail latency of a *given* SingleR
/// policy `(d, q)` against observed response-time data: the smallest
/// sample value `t` whose success rate
///
/// ```text
/// α(t) = Pr(X ≤ t) + q · Pr(X > t) · Pr(Y ≤ t−d | X > t)
/// ```
///
/// reaches `k`. The conditional term uses the joint `pairs` via a
/// merge-sort tree (falling back to the marginal of `rx` when fewer
/// than two pairs exist). This is the apples-to-apples predictor the
/// adaptive loop compares against the next trial's observation —
/// unlike [`compute_optimal_single_r`]'s output, which predicts the
/// *optimizer's* policy rather than the λ-blended one actually run.
///
/// `O(N log N)`.
///
/// # Panics
/// Panics on empty `rx`, non-finite samples or `q ∉ [0, 1]`.
pub fn predict_latency(rx: &[f64], pairs: &[(f64, f64)], k: f64, d: f64, q: f64) -> f64 {
    assert!(!rx.is_empty(), "need at least one primary sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    assert!((0.0..1.0).contains(&k), "percentile k must be in [0,1)");
    let mut xs = rx.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let use_pairs = pairs.len() >= 2;
    let tree = if use_pairs {
        Some(rangequery::MergeSortTree::new(pairs))
    } else {
        None
    };
    let mut ys = if use_pairs { Vec::new() } else { xs.clone() };
    ys.sort_by(f64::total_cmp);

    for (i, &t) in xs.iter().enumerate() {
        let p_le = i as f64 / n; // strict Pr(X < t), DiscreteCDF convention
        let p_y = match &tree {
            Some(tree) => {
                let denom = tree.count_above(t);
                if denom == 0 {
                    0.0
                } else {
                    // Strict Pr(Y < t−d | X > t): subtract ties at t−d.
                    let le = tree.count_above_le(t, t - d);
                    le as f64 / denom as f64
                }
            }
            None => {
                if t >= d {
                    ys.partition_point(|&y| y < t - d) as f64 / ys.len() as f64
                } else {
                    0.0
                }
            }
        };
        let alpha = p_le + q * (1.0 - p_le) * p_y;
        if alpha >= k {
            return t;
        }
    }
    *xs.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{expected_budget, policy_quantile, success_probability};
    use crate::policy::ReissuePolicy;
    use distributions::rng::seeded;
    use distributions::{CorrelatedPair, Dist, Exponential, Pareto, Sample};
    use proptest::prelude::*;
    use rand::Rng;
    use rangequery::MergeSortTree;

    fn exp_samples(n: usize, rate: f64, seed: u64) -> Vec<f64> {
        let mut rng = seeded(seed);
        Exponential::new(rate).sample_n(&mut rng, n)
    }

    #[test]
    fn budget_is_respected() {
        let rx = exp_samples(20_000, 1.0, 1);
        let ry = exp_samples(20_000, 1.0, 2);
        for budget in [0.005, 0.02, 0.05, 0.2, 0.5] {
            let r = compute_optimal_single_r(&rx, &ry, 0.95, budget);
            assert!(
                r.budget_used <= budget + 1e-9,
                "budget={budget} used={}",
                r.budget_used
            );
            assert!((0.0..=1.0).contains(&r.probability));
        }
    }

    #[test]
    fn zero_budget_degenerates_to_no_reissue() {
        let rx = exp_samples(5_000, 1.0, 3);
        let ry = rx.clone();
        let r = compute_optimal_single_r(&rx, &ry, 0.95, 0.0);
        assert_eq!(r.probability, 0.0);
        assert_eq!(r.budget_used, 0.0);
        // Predicted latency should be (about) the no-reissue P95.
        let e = Ecdf::new(rx.clone());
        assert!(
            (r.predicted_latency - e.quantile(0.95)).abs() <= e.quantile(0.96) - e.quantile(0.94),
            "predicted={} p95={}",
            r.predicted_latency,
            e.quantile(0.95)
        );
    }

    #[test]
    fn full_budget_reissues_immediately() {
        // With B = 1 the optimizer can afford q = 1 at d = min, i.e.
        // hedge every request immediately — the known optimum for iid
        // exponential tails.
        let rx = exp_samples(10_000, 1.0, 4);
        let ry = exp_samples(10_000, 1.0, 5);
        let r = compute_optimal_single_r(&rx, &ry, 0.95, 1.0);
        let e = Ecdf::new(rx.clone());
        assert!(r.delay <= e.quantile(0.05), "delay={}", r.delay);
        assert!(r.probability > 0.95);
        assert!(r.predicted_latency < e.quantile(0.95) * 0.7);
    }

    #[test]
    fn predicted_latency_is_achievable() {
        // Check the optimizer's predicted latency against the analytic
        // model evaluated at the returned policy.
        let rx = exp_samples(40_000, 1.0, 6);
        let ry = exp_samples(40_000, 1.0, 7);
        let k = 0.95;
        for budget in [0.02, 0.05, 0.1, 0.3] {
            let r = compute_optimal_single_r(&rx, &ry, k, budget);
            let x = Exponential::new(1.0);
            let y = Exponential::new(1.0);
            let model_t = policy_quantile(&r.policy(), &x, &y, k, x.quantile(0.9999), 1e-6);
            let rel = (r.predicted_latency - model_t).abs() / model_t;
            assert!(
                rel < 0.1,
                "budget={budget}: predicted={} model={model_t}",
                r.predicted_latency
            );
        }
    }

    #[test]
    fn beats_or_matches_single_d_at_equal_budget() {
        // SingleD with budget B must reissue at the (1-B) quantile.
        let rx = exp_samples(30_000, 1.0, 8);
        let ry = exp_samples(30_000, 1.0, 9);
        let k = 0.95;
        let x = Exponential::new(1.0);
        let y = Exponential::new(1.0);
        for budget in [0.02, 0.05, 0.1, 0.2] {
            let r = compute_optimal_single_r(&rx, &ry, k, budget);
            let e = Ecdf::new(rx.clone());
            let d_single_d = e.quantile(1.0 - budget);
            let single_d = ReissuePolicy::single_d(d_single_d);
            let t_d = policy_quantile(&single_d, &x, &y, k, x.quantile(0.9999), 1e-6);
            let t_r = policy_quantile(&r.policy(), &x, &y, k, x.quantile(0.9999), 1e-6);
            assert!(
                t_r <= t_d * 1.02,
                "budget={budget}: SingleR {t_r} worse than SingleD {t_d}"
            );
        }
    }

    #[test]
    fn matches_grid_search_optimum() {
        let x = Pareto::paper_default();
        let y = Pareto::paper_default();
        let mut rng = seeded(10);
        let rx = x.sample_n(&mut rng, 30_000);
        let ry = y.sample_n(&mut rng, 30_000);
        let k = 0.95;
        let budget = 0.1;
        let r = compute_optimal_single_r(&rx, &ry, k, budget);
        let (_, t_grid) =
            crate::model::optimal_single_r_grid(&x, &y, k, budget, x.quantile(0.99), 200);
        let t_opt = policy_quantile(&r.policy(), &x, &y, k, x.quantile(0.99999), 1e-4);
        assert!(t_opt <= t_grid * 1.1, "optimizer {t_opt} vs grid {t_grid}");
    }

    #[test]
    fn single_sample_inputs() {
        let r = compute_optimal_single_r(&[5.0], &[3.0], 0.5, 0.5);
        assert_eq!(r.delay, 5.0);
        assert!(r.predicted_latency >= 5.0);
    }

    #[test]
    fn identical_samples() {
        let rx = vec![7.0; 100];
        let r = compute_optimal_single_r(&rx, &rx, 0.95, 0.1);
        assert_eq!(r.delay, 7.0);
        assert_eq!(r.predicted_latency, 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rx_panics() {
        let _ = compute_optimal_single_r(&[], &[1.0], 0.95, 0.1);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn bad_budget_panics() {
        let _ = compute_optimal_single_r(&[1.0], &[1.0], 0.95, 1.5);
    }

    #[test]
    fn correlated_penalizes_correlation() {
        // With strong positive correlation the conditional Pr(Y|X>t) in
        // the tail is worse than the marginal, so the optimizer should
        // reissue earlier (smaller d) than the independent variant, as
        // the paper observes in Figure 3c.
        let base = Pareto::paper_default();
        let gen = CorrelatedPair::new(base, 0.9);
        let mut rng = seeded(11);
        let pairs: Vec<(f64, f64)> = (0..30_000).map(|_| gen.sample_pair(&mut rng)).collect();
        let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ry: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let k = 0.95;
        let budget = 0.1;
        let ind = compute_optimal_single_r(&rx, &ry, k, budget);
        let cor = compute_optimal_single_r_correlated(&rx, &pairs, k, budget);
        assert!(
            cor.delay <= ind.delay,
            "correlated d={} independent d={}",
            cor.delay,
            ind.delay
        );
    }

    #[test]
    fn correlated_agrees_with_independent_when_independent() {
        // If the pairs really are independent the two variants should
        // produce similar predictions.
        let mut rng = seeded(12);
        let d = Exponential::new(1.0);
        let pairs: Vec<(f64, f64)> = (0..40_000)
            .map(|_| (d.sample(&mut rng), d.sample(&mut rng)))
            .collect();
        let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ry: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let k = 0.95;
        let budget = 0.1;
        let ind = compute_optimal_single_r(&rx, &ry, k, budget);
        let cor = compute_optimal_single_r_correlated(&rx, &pairs, k, budget);
        let rel = (ind.predicted_latency - cor.predicted_latency).abs() / ind.predicted_latency;
        assert!(
            rel < 0.15,
            "ind={} cor={}",
            ind.predicted_latency,
            cor.predicted_latency
        );
    }

    #[test]
    fn fenwick_sweep_matches_merge_sort_tree() {
        // The success-rate internals: conditional CDF from the Fenwick
        // sweep must equal the MergeSortTree oracle at the sweep points.
        let mut rng = seeded(13);
        let d = Exponential::new(1.0);
        let pairs: Vec<(f64, f64)> = (0..2_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                (x, 0.5 * x + d.sample(&mut rng))
            })
            .collect();
        let tree = MergeSortTree::new(&pairs);
        let mut y_sorted: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        y_sorted.sort_by(f64::total_cmp);
        let mut by_x = pairs.clone();
        by_x.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut fenwick = FenwickTree::new(y_sorted.len());
        let mut next = 0usize;
        // Descending t sweep mirroring the optimizer.
        let mut ts: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        ts.sort_by(|a, b| b.total_cmp(a));
        for &t in ts.iter().take(500) {
            while next < by_x.len() && by_x[next].0 > t {
                let rank = y_sorted.partition_point(|&y| y < by_x[next].1);
                fenwick.add(rank.min(y_sorted.len() - 1), 1);
                next += 1;
            }
            let denom = fenwick.total() as usize;
            assert_eq!(denom, tree.count_above(t), "denominator at t={t}");
            let v = t * 0.5;
            let below = y_sorted.partition_point(|&y| y < v);
            let got = fenwick.prefix_sum(below) as usize;
            let want = pairs.iter().filter(|p| p.0 > t && p.1 < v).count();
            assert_eq!(got, want, "numerator at t={t}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn optimizer_invariants(
            rx in proptest::collection::vec(0.01f64..1e3, 2..400),
            ry in proptest::collection::vec(0.01f64..1e3, 2..400),
            k in 0.5f64..0.995,
            budget in 0.0f64..=1.0,
        ) {
            let r = compute_optimal_single_r(&rx, &ry, k, budget);
            prop_assert!(r.budget_used <= budget + 1e-9);
            prop_assert!((0.0..=1.0).contains(&r.probability));
            prop_assert!((0.0..=1.0).contains(&r.outstanding_at_delay));
            let e = Ecdf::new(rx.clone());
            prop_assert!(r.delay >= e.min() && r.delay <= e.max());
            // Predicted latency never exceeds the no-reissue quantile...
            prop_assert!(r.predicted_latency <= e.max());
            // ...and lies within the sample range.
            prop_assert!(r.predicted_latency >= e.min());
        }

        #[test]
        fn correlated_invariants(
            pairs in proptest::collection::vec((0.01f64..1e3, 0.01f64..1e3), 2..300),
            k in 0.5f64..0.995,
            budget in 0.0f64..=1.0,
        ) {
            let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let r = compute_optimal_single_r_correlated(&rx, &pairs, k, budget);
            prop_assert!(r.budget_used <= budget + 1e-9);
            prop_assert!((0.0..=1.0).contains(&r.probability));
            let e = Ecdf::new(rx);
            prop_assert!(r.delay >= e.min() && r.delay <= e.max());
            prop_assert!(r.predicted_latency <= e.max());
        }

        #[test]
        fn policy_from_result_has_reported_budget(
            rx in proptest::collection::vec(0.01f64..100.0, 10..200),
            budget in 0.01f64..0.5,
        ) {
            let r = compute_optimal_single_r(&rx, &rx, 0.9, budget);
            let e = Ecdf::new(rx.clone());
            // Recompute the budget from the policy parameters against the
            // empirical distribution: q * Pr(X ≥ d).
            let b = r.probability * e.sf_weak(r.delay);
            prop_assert!((b - r.budget_used).abs() < 1e-9);
            // The analytic-model budget uses the strict survival
            // Pr(X > d) ≤ Pr(X ≥ d), so it can only be smaller.
            let x = Ecdf::new(rx.clone());
            let model_b = expected_budget(&r.policy(), &x, &x);
            prop_assert!(model_b <= r.budget_used + 1e-9);
        }
    }

    #[test]
    fn predict_latency_matches_realized_min_latency() {
        // Simulate a static SingleR system and check that the predictor
        // reproduces the realized P95 of min(x, d + y) for reissued
        // queries.
        let mut rng = seeded(30);
        let d_dist = Exponential::new(1.0);
        let (d, q, k) = (0.8, 0.6, 0.95);
        let n = 50_000;
        let mut rx = Vec::with_capacity(n);
        let mut pairs = Vec::new();
        let mut latencies = Vec::with_capacity(n);
        for _ in 0..n {
            let x = d_dist.sample(&mut rng);
            let mut lat = x;
            if x > d && rng.gen::<f64>() < q {
                let y = d_dist.sample(&mut rng);
                pairs.push((x, y));
                lat = lat.min(d + y);
            }
            rx.push(x);
            latencies.push(lat);
        }
        let predicted = predict_latency(&rx, &pairs, k, d, q);
        let realized = crate::metrics::quantile(&latencies, k);
        let rel = (predicted - realized).abs() / realized;
        assert!(rel < 0.05, "predicted={predicted} realized={realized}");
    }

    #[test]
    fn predict_latency_zero_q_is_marginal_quantile() {
        let rx = exp_samples(10_000, 1.0, 31);
        let p = predict_latency(&rx, &[], 0.95, 1.0, 0.0);
        let e = Ecdf::new(rx);
        assert!((p - e.quantile(0.95)).abs() < 0.1, "p={p}");
    }

    #[test]
    fn predict_latency_immediate_full_hedge() {
        // d=0, q=1 over iid Exp(1): min of two exponentials ~ Exp(2).
        let mut rng = seeded(32);
        let d_dist = Exponential::new(1.0);
        let pairs: Vec<(f64, f64)> = (0..40_000)
            .map(|_| (d_dist.sample(&mut rng), d_dist.sample(&mut rng)))
            .collect();
        let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let p = predict_latency(&rx, &pairs, 0.95, 0.0, 1.0);
        let want = Exponential::new(2.0).quantile(0.95);
        assert!((p - want).abs() / want < 0.1, "p={p} want={want}");
    }

    #[test]
    fn success_probability_sanity_on_result() {
        // The optimizer's predicted success at (t, d*) should roughly
        // match the analytic formula with ECDFs plugged in.
        let rx = exp_samples(20_000, 1.0, 20);
        let ry = exp_samples(20_000, 1.0, 21);
        let r = compute_optimal_single_r(&rx, &ry, 0.95, 0.1);
        let x = Ecdf::new(rx);
        let y = Ecdf::new(ry);
        let s = success_probability(&r.policy(), &x, &y, r.predicted_latency);
        assert!(
            (s - r.predicted_success).abs() < 0.02,
            "model {s} vs optimizer {}",
            r.predicted_success
        );
    }
}
