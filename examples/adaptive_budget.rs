//! Budget selection (§4.4): find the reissue budget that minimizes P99
//! with the expanding/halving search, and the smallest budget meeting
//! an SLA.
//!
//! ```text
//! cargo run --release --example adaptive_budget
//! ```

use reissue::budget::{minimize_budget_for_sla_sweep, optimize_budget};
use reissue::policy::ReissuePolicy;
use reissue::workloads::{self, RunConfig};

fn main() {
    let spec = workloads::queueing(0.3, 0.5, 17);
    let run = RunConfig {
        seed: 23,
        ..RunConfig::new(25_000)
    };
    let k = 0.99;

    // Evaluate a budget: tune SingleR adaptively, measure P99. Common
    // random numbers across probes keep the search comparable.
    let eval = |budget: f64| -> f64 {
        if budget <= 0.0 {
            return spec.run(&run, &ReissuePolicy::None).quantile(k);
        }
        let tuned = workloads::adapt_policy(&spec, &run, k, budget, 0.5, 5);
        spec.run(&run, &tuned.policy).quantile(k)
    };

    println!("expanding/halving budget search (δ starts at 1%):");
    let result = optimize_budget(eval, 0.01, 0.4, 12);
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "trial", "budget", "P99", "best_budget", "best_P99"
    );
    for (i, t) in result.trials.iter().enumerate() {
        println!(
            "{:>6} {:>10.4} {:>12.1} {:>12.4} {:>12.1}",
            i, t.budget, t.latency, t.best_budget, t.best_latency
        );
    }
    println!(
        "\nbest budget = {:.2}% -> P99 = {:.1}",
        100.0 * result.best_budget,
        result.best_latency
    );

    // SLA mode: the smallest budget achieving P99 ≤ 1.25x the optimum.
    let target = result.best_latency * 1.25;
    let eval2 = |budget: f64| -> f64 {
        if budget <= 0.0 {
            return spec.run(&run, &ReissuePolicy::None).quantile(k);
        }
        let tuned = workloads::adapt_policy(&spec, &run, k, budget, 0.5, 5);
        spec.run(&run, &tuned.policy).quantile(k)
    };
    match minimize_budget_for_sla_sweep(eval2, target, 0.02, 0.4) {
        Some((b, l)) => println!(
            "smallest budget meeting P99 ≤ {target:.1}: {:.0}% (achieves {l:.1})",
            100.0 * b
        ),
        None => println!("no budget ≤ 40% meets P99 ≤ {target:.1}"),
    }
}
