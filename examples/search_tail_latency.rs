//! End-to-end Lucene-like experiment (§6.3): build a BM25 index over a
//! synthetic Zipf corpus, measure real query costs, and hedge the
//! simulated search cluster with SingleR.
//!
//! The corpus and query trace come from the shared
//! [`ShardedQueryWorkload`] generator (degenerate single-shard case) —
//! the same traffic the fan-out figure, the sharded example, and the
//! integration tests serve over TCP.
//!
//! ```text
//! cargo run --release --example search_tail_latency
//! ```

use reissue::policy::ReissuePolicy;
use reissue::search::{search, CorpusConfig, QueryWorkloadConfig, ShardedQueryWorkload};
use reissue::workloads::{self, RunConfig};

fn main() {
    // 1. Generate the shared workload: one shard = one corpus + index,
    //    plus a measured query trace (scaled down for a fast demo).
    let mut wl = ShardedQueryWorkload::generate(
        1,
        CorpusConfig {
            num_docs: 10_000,
            vocab: 20_000,
            ..CorpusConfig::default()
        },
        QueryWorkloadConfig {
            num_queries: 10_000,
            ..QueryWorkloadConfig::default()
        },
        100.0,
    );
    let index = &wl.indices[0];
    println!(
        "index: {} docs, {} terms, avg doc len {:.1}",
        index.num_docs(),
        index.num_terms(),
        index.avg_doc_len()
    );

    // 2. Run one query for real and show its hits.
    let (hits, cost) = search(index, &[15, 40, 200], 5);
    println!(
        "sample query [15, 40, 200]: {} hits, {cost} postings scanned",
        hits.len()
    );
    for h in hits.iter().take(3) {
        println!("  doc {} score {:.3}", h.doc, h.score);
    }

    // 3. The measured trace, calibrated to the paper's mean.
    wl.trace.calibrate_to_mean(39.73);
    let trace = &wl.trace;
    println!(
        "trace: mean = {:.2} ms, std = {:.2} ms, {:.2}% of queries above 100 ms",
        trace.mean_ms(),
        trace.std_ms(),
        100.0 * trace.frac_above(100.0)
    );

    // 4. Simulate the 10-server search cluster at 40% utilization.
    let spec = workloads::lucene_cluster(trace.costs_ms.clone(), 0.40, 5);
    let run = RunConfig {
        seed: 11,
        ..RunConfig::new(30_000)
    };
    let base = spec.run(&run, &ReissuePolicy::None);
    println!(
        "\nbaseline: P50 = {:.0} ms, P99 = {:.0} ms (util {:.2})",
        base.quantile(0.5),
        base.quantile(0.99),
        base.utilization()
    );

    // Hedge just 1% of queries, like the paper's headline result.
    let budget = 0.01;
    let adapted = workloads::adapt_policy(&spec, &run, 0.99, budget, 0.5, 8);
    let tuned = spec.run(&run, &adapted.policy);
    println!(
        "SingleR at {:.0}% budget: {} -> P99 = {:.0} ms ({:.0}% lower)",
        100.0 * budget,
        adapted.policy,
        tuned.quantile(0.99),
        100.0 * (1.0 - tuned.quantile(0.99) / base.quantile(0.99))
    );
}
