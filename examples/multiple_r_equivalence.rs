//! Numerically demonstrate Theorem 3.1/3.2: the optimal SingleR policy
//! matches the optimal DoubleR (and by induction MultipleR) policy at
//! equal budget — reissuing more than once buys nothing.
//!
//! ```text
//! cargo run --release --example multiple_r_equivalence
//! ```

use distributions::{Exponential, Pareto};
use reissue::model::{optimal_double_r_grid, optimal_single_r_grid};

fn main() {
    println!("k = 0.95 tail target; grid-searched optima in the analytical model\n");

    println!("Exponential(1) service times:");
    let x = Exponential::new(1.0);
    let y = Exponential::new(1.0);
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "budget", "SingleR P95", "DoubleR P95", "gap"
    );
    for budget in [0.02, 0.05, 0.10, 0.20, 0.30] {
        let (ps, ts) = optimal_single_r_grid(&x, &y, 0.95, budget, 8.0, 64);
        let (pd, td) = optimal_double_r_grid(&x, &y, 0.95, budget, 8.0, 20);
        println!(
            "{budget:>8.2} {ts:>14.4} {td:>14.4} {:>9.2}%   single: {ps}   double: {pd}",
            100.0 * (td - ts) / ts
        );
    }

    println!("\nPareto(1.1, 2.0) service times (the paper's heavy tail):");
    let x = Pareto::paper_default();
    let y = Pareto::paper_default();
    for budget in [0.05, 0.10, 0.20] {
        let (_, ts) = optimal_single_r_grid(&x, &y, 0.95, budget, 60.0, 64);
        let (_, td) = optimal_double_r_grid(&x, &y, 0.95, budget, 60.0, 20);
        println!(
            "  budget {budget:.2}: SingleR {ts:.2} vs DoubleR {td:.2}  (gap {:+.2}%)",
            100.0 * (td - ts) / ts
        );
    }

    println!(
        "\nDoubleR never wins beyond grid resolution — empirical support for \
         Theorem 3.1/3.2's claim that one well-placed randomized reissue \
         is all you ever need."
    );
}
