//! Quickstart: compute an optimal SingleR reissue policy from a
//! response-time log.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's §4.1 path end to end: sample a service's
//! response-time distribution, pick a tail-latency percentile and a
//! reissue budget, and let `ComputeOptimalSingleR` find the reissue
//! delay `d` and probability `q` that minimize the tail.

use distributions::rng::seeded;
use distributions::{Pareto, Sample};
use rand::Rng;
use reissue::optimizer::compute_optimal_single_r;

fn main() {
    // Pretend this is a production latency log: 100k response times of
    // primary requests and (here, iid) reissue requests, in ms.
    let dist = Pareto::paper_default(); // heavy-tailed: shape 1.1, mode 2
    let mut rng = seeded(7);
    let primaries: Vec<f64> = dist.sample_n(&mut rng, 100_000);
    let reissues: Vec<f64> = dist.sample_n(&mut rng, 100_000);

    println!(
        "samples: {} primary / {} reissue",
        primaries.len(),
        reissues.len()
    );
    println!(
        "no-reissue P95 = {:.1} ms, P99 = {:.1} ms",
        reissue::metrics::quantile(&primaries, 0.95),
        reissue::metrics::quantile(&primaries, 0.99),
    );

    // Minimize P95 while reissuing at most 5% of requests.
    let (k, budget) = (0.95, 0.05);
    let policy = compute_optimal_single_r(&primaries, &reissues, k, budget);

    println!("\noptimal SingleR for k={k}, budget={budget}:");
    println!("  reissue delay d*      = {:.2} ms", policy.delay);
    println!("  reissue probability q = {:.3}", policy.probability);
    println!(
        "  outstanding at d*     = {:.1}% of requests",
        100.0 * policy.outstanding_at_delay
    );
    println!(
        "  expected reissue rate = {:.2}% (≤ budget)",
        100.0 * policy.budget_used
    );
    println!(
        "  predicted P95         = {:.1} ms",
        policy.predicted_latency
    );

    // A SingleD (deterministic hedge, "Tail at Scale") policy with the
    // same budget must wait until only `budget` of requests remain:
    let single_d_delay = reissue::metrics::quantile(&primaries, 1.0 - budget);
    println!(
        "\nfor contrast, SingleD at the same budget reissues at {:.1} ms \
         — after the P95 target it is trying to fix",
        single_d_delay
    );

    // Verify the prediction by Monte-Carlo: replay the log, hedging
    // per the policy.
    let mut rng = seeded(8);
    let mut latencies = Vec::with_capacity(primaries.len());
    let mut issued = 0usize;
    for _ in 0..100_000 {
        let x = dist.sample(&mut rng);
        let mut latency = x;
        if x > policy.delay && rng.gen_bool(policy.probability.clamp(0.0, 1.0)) {
            issued += 1;
            let y = dist.sample(&mut rng);
            latency = latency.min(policy.delay + y);
        }
        latencies.push(latency);
    }
    println!(
        "\nreplayed 100k queries: measured P95 = {:.1} ms, reissue rate = {:.2}%",
        reissue::metrics::quantile(&latencies, k),
        100.0 * issued as f64 / latencies.len() as f64
    );
}
