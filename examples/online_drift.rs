//! On-line adaptation under workload drift (§4.4, "varying load /
//! response-time distributions"): the [`OnlineAdapter`] keeps the
//! SingleR policy tuned while the service-time distribution shifts
//! under its feet.
//!
//! ```text
//! cargo run --release --example online_drift
//! ```

use distributions::rng::seeded;
use distributions::{Exponential, Sample};
use reissue::online::{OnlineAdapter, OnlineConfig};

fn main() {
    let mut adapter = OnlineAdapter::new(OnlineConfig {
        k: 0.95,
        budget: 0.1,
        window: 4_000,
        reoptimize_every: 1_000,
        learning_rate: 0.5,
        ..OnlineConfig::default()
    });
    let mut rng = seeded(2024);

    // A day in the life of a service: three load phases, each changing
    // the response-time distribution (e.g. cache-warm mornings, peak
    // afternoons, slow batch-heavy nights).
    let phases: [(&str, f64, usize); 3] = [
        ("off-peak (fast, mean 1ms)", 1.0, 12_000),
        ("peak (mean 4ms)", 0.25, 12_000),
        ("batch-contended (mean 10ms)", 0.1, 12_000),
    ];

    println!(
        "{:<32} {:>10} {:>8} {:>12} {:>10}",
        "phase", "delay d", "prob q", "pred. P95", "window P95"
    );
    for (name, rate, n) in phases {
        let dist = Exponential::new(rate);
        for _ in 0..n {
            adapter.observe_primary(dist.sample(&mut rng));
        }
        let p = adapter.policy();
        println!(
            "{:<32} {:>10.3} {:>8.3} {:>12.3} {:>10.3}",
            name,
            p.delay,
            p.probability,
            p.predicted_latency,
            adapter.window_quantile(0.95).unwrap_or(f64::NAN),
        );
        assert!(p.budget_used <= 0.1 + 1e-9);
    }

    println!(
        "\n{} re-optimizations over {} observations; the reissue delay tracked \
         a 10x service-time drift while holding the 10% budget.",
        adapter.reoptimizations(),
        36_000
    );
}
