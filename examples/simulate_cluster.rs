//! Simulate a 10-server cluster under the paper's Queueing workload and
//! compare reissue policies: None, SingleD, hand-tuned SingleR and the
//! adaptively optimized SingleR.
//!
//! ```text
//! cargo run --release --example simulate_cluster
//! ```

use reissue::policy::ReissuePolicy;
use reissue::workloads::{self, RunConfig};

fn main() {
    // §5.1 Queueing workload: Pareto(1.1, 2.0) service times with
    // correlation r = 0.5, 10 FIFO servers, Poisson arrivals at 30%
    // utilization.
    let spec = workloads::queueing(0.30, 0.5, 42);
    let run = RunConfig {
        seed: 7,
        ..RunConfig::new(60_000)
    };
    let k = 0.95;
    let budget = 0.10;

    println!(
        "workload: {} | {} queries, target P95, budget {budget}",
        spec.name, 60_000
    );

    let base = spec.run(&run, &ReissuePolicy::None);
    println!(
        "\n{:<28} P95 = {:>8.1}   P99 = {:>8.1}   rate = {:>5.3}  util = {:.2}",
        "no reissue",
        base.quantile(k),
        base.quantile(0.99),
        base.reissue_rate(),
        base.utilization(),
    );

    // SingleD at the same budget: reissue at the empirical (1-B)
    // quantile — the "Tail at Scale" hedge.
    let single_d = workloads::runner::single_d_static(&spec, 50_000, budget, 3);
    let rd = spec.run(&run, &single_d);
    println!(
        "{:<28} P95 = {:>8.1}   P99 = {:>8.1}   rate = {:>5.3}",
        format!("{single_d}"),
        rd.quantile(k),
        rd.quantile(0.99),
        rd.reissue_rate(),
    );

    // A hand-tuned SingleR guess.
    let hand = ReissuePolicy::single_r(30.0, 0.8);
    let rh = spec.run(&run, &hand);
    println!(
        "{:<28} P95 = {:>8.1}   P99 = {:>8.1}   rate = {:>5.3}",
        format!("{hand}"),
        rh.quantile(k),
        rh.quantile(0.99),
        rh.reissue_rate(),
    );

    // The adaptive optimizer (§4.3): probe, observe, re-optimize.
    let adapted = workloads::adapt_policy(&spec, &run, k, budget, 0.5, 8);
    println!("\nadaptive trials (λ=0.5):");
    println!(
        "{:>6} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "trial", "predicted", "observed", "delay", "q", "rate"
    );
    for (i, t) in adapted.trials.iter().enumerate() {
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>10.2} {:>8.3} {:>8.3}",
            i, t.predicted, t.observed, t.delay, t.probability, t.reissue_rate
        );
    }
    let ra = spec.run(&run, &adapted.policy);
    println!(
        "\n{:<28} P95 = {:>8.1}   P99 = {:>8.1}   rate = {:>5.3}  (converged: {})",
        format!("{}", adapted.policy),
        ra.quantile(k),
        ra.quantile(0.99),
        ra.reissue_rate(),
        adapted.converged,
    );
    println!(
        "\ntail-latency reduction vs no reissue: {:.2}x at P95",
        base.quantile(k) / ra.quantile(k)
    );
}
