//! Utilization-aware hedging riding out a load surge, live over TCP.
//!
//! Redundancy's benefit flips sign with load: while the cluster has
//! slack a reissue races a fresh replica and trims the tail, but near
//! saturation the duplicate *is* the extra load and hedging feeds the
//! very queues it is trying to escape. A latency-only adapter cannot
//! tell which side of that flip it is on. This example runs the fix
//! end to end:
//!
//! * a 3-replica TCP cluster serves ~1 ms set intersections with a
//!   rare ~9 ms straggler command (the tail worth hedging);
//! * an open-loop generator offers a scripted arrival-rate step —
//!   a calm plateau at ~30% utilization, then a surge to ~95%;
//! * one [`HedgedClient`] runs the online `(d, q)` adapter with a
//!   [`LoadShaper`]: every dispatch and completion feeds the
//!   [`LoadSignal`] estimator, and the estimated utilization ρ̂ damps
//!   the reissue budget toward zero as the cluster saturates.
//!
//! The per-segment report shows the whole story: on the calm plateau
//! the client hedges at its full budget and beats the unhedged tail;
//! during the surge ρ̂ climbs, the damping shuts hedging off, and the
//! aware client degrades no worse than an unhedged one — instead of
//! reissuing the overloaded cluster into collapse.
//!
//! Run with: `cargo run --release --example load_adaptive_hedging`
//!
//! `HEDGE_TCP_QUERIES=<n>` scales the per-plateau arrival count.
//!
//! [`LoadSignal`]: reissue_core::load::LoadSignal
//! [`LoadShaper`]: reissue_core::load::LoadShaper

use hedge::harness::{Arrivals, Cluster, LoadConfig, LoadReport, RateEvent};
use hedge::{HedgeConfig, HedgedClient};
use kvstore::{Command, IntSet, KvStore};
use reissue_core::load::LoadShaper;
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

const REPLICAS: usize = 3;
const NANOS_PER_OP: u64 = 250;
/// Bulk query: ~3 800 probe-model ops ≈ 1 ms of service burn.
const SERVICE_MS: f64 = 1.0;
/// One query in this many is the ~9 ms straggler command.
const SLOW_EVERY: usize = 150;
const BUDGET: f64 = 0.08;
/// The scripted plateaus: calm, then a surge to near saturation.
const UTILS: [f64; 2] = [0.3, 0.95];

fn store() -> KvStore {
    let mut s = KvStore::new();
    s.load_set("work", IntSet::from_unsorted((0..400u32).collect()));
    s.load_set("work2", IntSet::from_unsorted((200..600u32).collect()));
    s.load_set("slow", IntSet::from_unsorted((0..3_000u32).collect()));
    s.load_set("slow2", IntSet::from_unsorted((1_500..4_500u32).collect()));
    s
}

fn command(i: usize) -> Command {
    if i % SLOW_EVERY == SLOW_EVERY / 2 {
        Command::SInterCard("slow".into(), "slow2".into())
    } else {
        Command::SInterCard("work".into(), "work2".into())
    }
}

fn arrivals_at(util: f64) -> Arrivals {
    Arrivals::Poisson {
        mean_us: ((SERVICE_MS * 1e3) / (REPLICAS as f64 * util)).max(1.0) as u64,
    }
}

fn queries_per_phase() -> usize {
    std::env::var("HEDGE_TCP_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_500)
}

fn surge_config(q: usize) -> LoadConfig {
    LoadConfig {
        queries: q * UTILS.len(),
        arrivals: arrivals_at(UTILS[0]),
        max_in_flight: 512,
        seed: 0x5D_0AD,
        script: Vec::new(),
        rate_script: vec![RateEvent {
            at_query: q,
            arrivals: arrivals_at(UTILS[1]),
        }],
    }
}

fn run(label: &str, cfg: HedgeConfig, q: usize) -> (LoadReport, HedgedClient) {
    let cluster = Cluster::spawn(REPLICAS, &store(), NANOS_PER_OP).expect("bind replicas");
    let client = HedgedClient::connect(&cluster.addrs(), cfg).expect("connect client");
    let report = cluster.run_load(&client, &surge_config(q), command);
    assert_eq!(report.lost(), 0, "{label}: queries lost");
    (report, client)
}

fn main() {
    let q = queries_per_phase();
    println!(
        "load surge over TCP: {REPLICAS} replicas, {q} arrivals/plateau, \
         utilization {:.0}% -> {:.0}%\n",
        100.0 * UTILS[0],
        100.0 * UTILS[1]
    );

    let (unhedged, _) = run(
        "unhedged",
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            ..HedgeConfig::default()
        },
        q,
    );
    let (aware, client) = run(
        "aware",
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: Some(OnlineConfig {
                k: 0.99,
                budget: BUDGET,
                window: 1_000,
                reoptimize_every: 200,
                learning_rate: 0.5,
                min_pairs: 32,
                load: Some(LoadShaper::default()),
            }),
            ..HedgeConfig::default()
        },
        q,
    );

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "plateau", "unhedged", "aware P99", "reissue", "rho_hat"
    );
    for (k, &util) in UTILS.iter().enumerate() {
        println!(
            "{:>9.0}% {:>9.2} ms {:>9.2} ms {:>12.4} {:>12.3}",
            100.0 * util,
            unhedged.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            aware.segments[k].quantile(0.99).unwrap_or(f64::NAN),
            aware.segments[k].reissue_rate(),
            aware.segments[k].utilization_mean,
        );
    }

    let snap = client.load_snapshot().expect("load signal active");
    let shaper = LoadShaper::default();
    println!(
        "\nfinal estimator state: rho_hat {:.3} (damping {:.3}), \
         W_bar {:.2} ms, S_bar {:.2} ms, offered {:.0} qps",
        snap.utilization,
        shaper.damping(snap.utilization),
        snap.latency_ewma_ms,
        snap.service_est_ms,
        snap.offered_qps
    );

    // The surge plateau is where load-blind hedging collapses: the
    // aware client must shed no more load than the unhedged baseline
    // and must have throttled its reissue spend.
    let last = UTILS.len() - 1;
    assert!(
        aware.segments[last].drop_rate() <= unhedged.segments[last].drop_rate() + 1e-9,
        "aware hedging shed more load than unhedged under the surge"
    );
    assert!(
        aware.segments[last].reissue_rate() < aware.segments[0].reissue_rate(),
        "the reissue rate must fall as the cluster saturates"
    );
    println!("\nok: hedging paid for itself when calm and got out of the way under the surge");
}
