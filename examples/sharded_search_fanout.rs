//! Sharded scatter-gather search over real TCP: the tail-at-scale
//! compounding effect, and per-shard hedging under one shared
//! cross-shard budget recovering it.
//!
//! A query fanned out to `N` document-partitioned index shards
//! completes when its *slowest* leg does, so a 1% per-leg tail becomes
//! a `1 − 0.99^N` aggregate tail. This demo spins up 16 BM25 shard
//! groups × 2 replicas behind real sockets with transient per-replica
//! slow windows (the independent machine noise a fan-out compounds),
//! measures the unhedged aggregate tail, then hedges per shard under
//! one shared cross-shard reissue budget: a static deep-delay SingleR
//! (which self-targets the stragglers and recovers the tail) and the
//! per-leg online adapter (which demonstrates governed budget sharing;
//! allocating a shared budget *across* legs by need is open work —
//! each leg adapts to its own traffic only).
//!
//! ```text
//! cargo run --release --example sharded_search_fanout
//! ```

use reissue::online::OnlineConfig;
use reissue::policy::ReissuePolicy;
use reissue::search::{CorpusConfig, QueryWorkloadConfig, ShardedQueryWorkload};
use reissue::shard::{
    run_fanout_load, FanoutClient, FanoutConfig, FanoutLoadConfig, FanoutSickness, ShardedCluster,
};

const SHARDS: usize = 16;
const REPLICAS: usize = 2;
/// Per-op burn, scaled with the fan-out width: every arrival costs the
/// client SHARDS leg dispatches, and this demo shares one machine with
/// its 32 servers — slower (sleep-based) service keeps the client off
/// the critical path while per-group utilization stays fixed.
const NANOS_PER_OP: u64 = 150 * SHARDS as u64;
const QUERIES: usize = 600;
const BUDGET: f64 = 0.05;
/// Offered per-group utilization (arrival rate x mean leg service /
/// replicas).
const UTIL: f64 = 0.40;

fn main() {
    // One corpus + index per shard, one shared query log: the same
    // workload the fan-out bench figure and integration tests use.
    let wl = ShardedQueryWorkload::generate(
        SHARDS,
        CorpusConfig {
            num_docs: 400,
            vocab: 8_000,
            mean_doc_len: 50.0,
            seed: 0xFA27,
            ..CorpusConfig::default()
        },
        QueryWorkloadConfig {
            num_queries: 300,
            base_ops: 3_000,
            top_k: 10,
            seed: 0xFA28,
            ..QueryWorkloadConfig::default()
        },
        NANOS_PER_OP as f64,
    );
    let cluster =
        ShardedCluster::spawn(wl.backends(), REPLICAS, NANOS_PER_OP).expect("bind shard groups");
    println!(
        "cluster: {SHARDS} shard groups x {REPLICAS} replicas, mean leg {:.2} ms",
        wl.mean_leg_ms()
    );

    // Open-loop Poisson pacing at 40% per-group utilization, with the
    // tail-at-scale ingredient: transient 4x slow windows staggered
    // across replicas (the independent per-machine noise a fan-out
    // compounds — with ~2.5% of legs degraded at any moment, a third
    // of 16-wide fan-outs touch a slow replica). Primaries are
    // targeted blind round-robin; reissues are health-aware, so the
    // hedged phase can route around what the baseline must eat.
    let mean_us = (wl.mean_leg_ms() * 1e3 / (REPLICAS as f64 * UTIL)).max(1.0) as u64;
    let window = QUERIES / 10;
    let script: Vec<FanoutSickness> = (0..4)
        .flat_map(|i| {
            let shard = 2 + 4 * i;
            let start = QUERIES / 4 + i * QUERIES / 8;
            [
                FanoutSickness {
                    at_query: start,
                    shard,
                    replica: i % REPLICAS,
                    nanos_per_op: 4 * NANOS_PER_OP,
                },
                FanoutSickness {
                    at_query: start + window,
                    shard,
                    replica: i % REPLICAS,
                    nanos_per_op: NANOS_PER_OP,
                },
            ]
        })
        .collect();
    let warmup = FanoutLoadConfig {
        queries: 60,
        arrivals: reissue::hedge::harness::Arrivals::Poisson { mean_us },
        max_in_flight: 32,
        ..FanoutLoadConfig::default()
    };
    let load = FanoutLoadConfig {
        queries: QUERIES,
        arrivals: reissue::hedge::harness::Arrivals::Poisson { mean_us },
        max_in_flight: 32,
        script,
        ..FanoutLoadConfig::default()
    };

    // Phase 1 — unhedged: watch the per-leg tail compound.
    let base_client =
        FanoutClient::connect(&cluster, FanoutConfig::default()).expect("connect fan-out client");
    let _ = run_fanout_load(&cluster, &base_client, &warmup, wl.command_fn());
    let base = run_fanout_load(&cluster, &base_client, &load, wl.command_fn());
    cluster.heal_all();
    let leg_p99 = base.leg_quantile(0.99).unwrap_or(f64::NAN);
    let agg_p99 = base.quantile(0.99).unwrap_or(f64::NAN);
    println!(
        "\nunhedged: leg P99 = {:.1} ms, aggregate P99 = {:.1} ms \
         (max over {SHARDS} legs; 1 - 0.99^{SHARDS} = {:.0}% of fan-outs \
         see at least one leg past its P99)",
        leg_p99,
        agg_p99,
        100.0 * (1.0 - 0.99f64.powi(SHARDS as i32))
    );
    drop(base_client);

    // Phase 2 — per-shard static SingleR under one shared cross-shard
    // budget. A deep delay self-targets the stragglers: on a healthy
    // leg almost nothing is still outstanding at 3x the mean, so the
    // shared budget concentrates on exactly the legs stuck behind a
    // slow machine, and the health-EWMA routes each rescue to the
    // healthy sibling.
    let deep_d = 3.0 * wl.mean_leg_ms();
    let hedged_client = FanoutClient::connect(
        &cluster,
        FanoutConfig {
            policy: ReissuePolicy::single_r(deep_d, 1.0),
            budget: Some(BUDGET),
            ..FanoutConfig::default()
        },
    )
    .expect("connect hedged fan-out client");
    let _ = run_fanout_load(&cluster, &hedged_client, &warmup, wl.command_fn());
    let hedged = run_fanout_load(&cluster, &hedged_client, &load, wl.command_fn());
    cluster.heal_all();
    println!(
        "hedged (reissue past d = {:.0} ms) @ {:.0}% shared budget: \
         aggregate P99 = {:.1} ms ({:.0}% lower), reissue rate {:.1}%",
        deep_d,
        100.0 * BUDGET,
        hedged.quantile(0.99).unwrap_or(f64::NAN),
        100.0 * (1.0 - hedged.quantile(0.99).unwrap_or(f64::NAN) / agg_p99),
        100.0 * hedged_client.realized_reissue_rate()
    );
    drop(hedged_client);

    // Phase 3 — per-leg online adaptation, same shared governor: each
    // leg learns its own (d, q) from live traffic while the governor
    // holds global reissue spend at the budget no matter the width.
    let online_client = FanoutClient::connect(
        &cluster,
        FanoutConfig {
            online: Some(OnlineConfig {
                k: 0.99,
                budget: BUDGET,
                window: 500,
                reoptimize_every: 100,
                learning_rate: 0.5,
                min_pairs: 24,
                load: None,
            }),
            budget: Some(BUDGET),
            ..FanoutConfig::default()
        },
    )
    .expect("connect online fan-out client");
    let _ = run_fanout_load(&cluster, &online_client, &warmup, wl.command_fn());
    let online = run_fanout_load(&cluster, &online_client, &load, wl.command_fn());
    cluster.heal_all();
    println!(
        "online-adapted @ {:.0}% shared budget: aggregate P99 = {:.1} ms, \
         reissue rate {:.1}% (governed across all {SHARDS} legs)",
        100.0 * BUDGET,
        online.quantile(0.99).unwrap_or(f64::NAN),
        100.0 * online_client.realized_reissue_rate()
    );

    // One real scatter-gather, merged: top-k across every shard.
    let reply = online_client.execute_all_blocking(&wl.command(0));
    let merged = reply.merge_top_k(wl.top_k);
    println!(
        "\nsample fan-out: {} legs ok, slowest leg {:.2} ms, merged top-{}:",
        reply.ok_legs(),
        reply.max_leg_ms(),
        wl.top_k
    );
    for h in merged.iter().take(5) {
        println!("  doc {:>6}  score {:.3}", h.doc, h.score());
    }
}
