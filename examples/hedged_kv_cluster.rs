//! Hedged requests against a live 3-replica TCP kvstore cluster.
//!
//! This is the paper's §6.2 Redis experiment as a *running system*,
//! built on the scale-out harness (`hedge::harness`): a [`Cluster`]
//! of TCP replicas serves the set-intersection dataset with rare
//! "queries of death" behind round-robin connection sweeps, an
//! open-loop generator offers the trace on a fixed clock, and the
//! shared log-bucketed histogram records every wall-clock latency.
//! The run compares:
//!
//! 1. **Unhedged** — every query to one replica, no reissues.
//! 2. **Hedged, independence model** — `hedge::HedgedClient` with the
//!    `OnlineAdapter` pinned to the §4.1 independent optimizer
//!    (`min_pairs: usize::MAX`): the adapter never sees joint samples,
//!    so it prices band hedges off the marginal reissue distribution.
//! 3. **Hedged, correlated** — the same adapter fed censored
//!    `(primary, reissue)` pairs from raced hedges, switching to the
//!    §4.2 correlated optimizer once enough pairs accumulate. This is
//!    the configuration that lets the adapter serve the *true* target
//!    quantile (`k: 0.99`) instead of compensating with an artificially
//!    deep one.
//! 4. **The §3 SingleR-vs-MultipleR comparison, static vs static** —
//!    two more phases replay the trace under *fixed* policies built
//!    from phase 3's artifacts: a SingleR comparator at the adapted
//!    `(d*, q*)`, and a two-stage DoubleR with the identical main
//!    stage plus a near-degenerate deep rescue stage. Per Theorem 3.2
//!    the extra stage buys no asymptotic advantage at equal budget —
//!    and this workload shows *why* the optimal MultipleR collapses
//!    toward SingleR: any stage with substantial probability past
//!    `d*` mostly re-reissues the queries of death themselves (they
//!    are what is still outstanding that deep), and a third monster
//!    copy blacks out the whole cluster. The solved DoubleR therefore
//!    keeps its deep stage nearly degenerate, and the run verifies it
//!    matches the SingleR phase's P99 at an equal realized budget.
//!
//! Run with: `cargo run --release --example hedged_kv_cluster`
//!
//! `HEDGE_CLUSTER_QUERIES=<n>` shrinks the trace (CI smoke runs); the
//! P99 assertions only apply at full scale, where the tail statistics
//! are stable.

use hedge::harness::{Arrivals, Cluster, LoadConfig, LoadReport};
use hedge::{HedgeConfig, HedgedClient};
use kvstore::dataset::{Dataset, DatasetConfig};
use kvstore::workload::{store_with_monsters, Trace, WorkloadConfig};
use reissue_core::online::OnlineConfig;
use reissue_core::policy::ReissuePolicy;

const REPLICAS: usize = 3;
const WORKERS: usize = 4;
const QUERIES: usize = 6_000;
const BUDGET: f64 = 0.08;
/// The true target quantile. The correlated adapter holds it directly;
/// earlier revisions had to compensate for the independence model's
/// noise-band overvaluation with an artificially deep `k = 0.995`.
const TARGET_K: f64 = 0.99;
const NANOS_PER_OP: u64 = 150;
/// One in `MONSTER_EVERY` queries intersects the two huge sets below —
/// §6.2's rare "query of death" (~500k probe ops ≈ 70 ms of service
/// time vs ~0.5 ms typical). At 0.2% of the trace the monsters sit
/// *below* the P99 rank, so the P99 measures their head-of-line
/// **victims** — exactly the latency hedging can remove.
const MONSTER_EVERY: usize = 500;
/// Open-loop dispatch interval: ~0.8 ms between queries keeps baseline
/// utilization near 25% of the 3-replica cluster's capacity.
const INTERVAL_US: u64 = 800;

fn online_config(min_pairs: usize) -> OnlineConfig {
    OnlineConfig {
        k: TARGET_K,
        budget: BUDGET,
        window: 1_000,
        reoptimize_every: 250,
        learning_rate: 0.5,
        min_pairs,
        load: None,
    }
}

/// Drives the shared trace through the client **open-loop** via the
/// harness: queries are dispatched on a fixed clock regardless of
/// completions, as in the paper's §6 system experiments. (A closed
/// loop would let every stalled query suppress the load that measures
/// the stall.) The harness bounds admission and accounts every
/// arrival; a healthy run loses nothing and fails nothing. Commands
/// come from the shared §6.2 generator
/// (`Trace::monster_command_fn`), queries of death included.
fn run_phase(
    cluster: &Cluster,
    client: &HedgedClient,
    trace: &Trace,
    queries: usize,
) -> LoadReport {
    let report = cluster.run_load(
        client,
        &LoadConfig {
            queries,
            arrivals: Arrivals::Fixed {
                interval_us: INTERVAL_US,
            },
            max_in_flight: 1_024,
            ..LoadConfig::default()
        },
        trace.monster_command_fn(MONSTER_EVERY),
    );
    assert_eq!(report.failed, 0, "no query may fail: {report:?}");
    assert_eq!(report.lost(), 0, "every query must be accounted for");
    report
}

fn report(label: &str, run: &LoadReport, client: &HedgedClient) -> f64 {
    let q = |p| run.quantile(p).unwrap_or(f64::NAN);
    let (p50, p90, p99) = (q(0.50), q(0.90), q(0.99));
    let stats = client.stats();
    let rate = stats.reissues as f64 / stats.queries.max(1) as f64;
    let slow = run.latency_ms.count_over(10.0);
    println!(
        "  {label:<26} P50 {p50:8.2} ms   P90 {p90:8.2} ms   P99 {p99:8.2} ms   \
         >10ms {slow}   reissue rate {:5.1}%   reissue wins {}   cancelled in time {}   \
         pairs {}+{}c   dropped {}",
        100.0 * rate,
        stats.reissue_wins,
        stats.cancelled_in_time,
        stats.pairs_exact,
        stats.pairs_censored,
        run.dropped,
    );
    // Per-stage breakdown, for multi-stage phases only.
    if stats.reissues_by_stage.iter().skip(1).any(|&c| c > 0) {
        let last = stats
            .reissues_by_stage
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0);
        let used: Vec<String> = stats.reissues_by_stage[..=last]
            .iter()
            .enumerate()
            .map(|(i, c)| format!("stage {}: {c}", i + 1))
            .collect();
        println!("  {:<26} reissues by stage — {}", "", used.join(", "));
    }
    p99
}

/// Runs one phase over a fresh cluster and returns
/// `(client, report, p99)`.
fn phase(
    label: &str,
    dataset: &Dataset,
    trace: &Trace,
    queries: usize,
    cfg: HedgeConfig,
) -> (HedgedClient, LoadReport, f64) {
    let cluster =
        Cluster::spawn(REPLICAS, &store_with_monsters(dataset), NANOS_PER_OP).expect("bind");
    let client = HedgedClient::connect(&cluster.addrs(), cfg).expect("connect client");
    let run = run_phase(&cluster, &client, trace, queries);
    let p99 = report(label, &run, &client);
    (client, run, p99)
}

/// An online-adaptive phase (the `min_pairs` gate selects the §4.1 vs
/// §4.2 optimizer).
fn hedged_phase(
    label: &str,
    dataset: &Dataset,
    trace: &Trace,
    queries: usize,
    min_pairs: usize,
) -> (HedgedClient, LoadReport, f64) {
    phase(
        label,
        dataset,
        trace,
        queries,
        HedgeConfig {
            policy: ReissuePolicy::None, // adapter takes over once warm
            online: Some(online_config(min_pairs)),
            workers: WORKERS,
            ..HedgeConfig::default()
        },
    )
}

fn main() {
    let queries: usize = std::env::var("HEDGE_CLUSTER_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(QUERIES);
    let full_scale = queries >= QUERIES;

    // A mid-scale instance of the paper's dataset with a mild
    // cardinality spread; the heavy tail comes from the explicitly
    // injected queries of death (see `MONSTER_EVERY`).
    let dataset = Dataset::generate(DatasetConfig {
        num_sets: 300,
        universe: 100_000,
        card_mu: (300.0f64).ln(),
        card_sigma: 0.3,
        seed: 0x5e75,
    });
    let trace = Trace::generate(
        &dataset,
        WorkloadConfig {
            num_queries: queries,
            ns_per_op: NANOS_PER_OP as f64,
            seed: 0xbeef,
        },
    );
    println!(
        "dataset: {} sets + 2 monster sets, trace: {} queries \
         ({} queries of death), target P{:.0} within a {:.0}% budget",
        dataset.sets.len(),
        trace.pairs.len(),
        queries / MONSTER_EVERY,
        100.0 * TARGET_K,
        100.0 * BUDGET,
    );

    // ── Phase 1: no hedging ────────────────────────────────────────
    let (_, _, p99_unhedged) = phase(
        "unhedged",
        &dataset,
        &trace,
        queries,
        HedgeConfig {
            policy: ReissuePolicy::None,
            online: None,
            workers: WORKERS,
            ..HedgeConfig::default()
        },
    );

    // ── Phase 2: hedged, independence-model SingleR (A) ────────────
    let (ind, _, p99_ind) = hedged_phase(
        "hedged (independent)",
        &dataset,
        &trace,
        queries,
        usize::MAX, // pin to the §4.1 optimizer: never enough pairs
    );
    let d_ind = ind.online_policy().expect("online adapter active").delay;
    assert_eq!(ind.online_correlated(), Some(false));
    drop(ind);

    // ── Phase 3: hedged, correlated SingleR from censored pairs (B) ─
    let (hedged, hedged_run, p99_hedged) =
        hedged_phase("hedged (correlated)", &dataset, &trace, queries, 48);
    let final_policy = hedged.policy();
    let record = hedged.online_policy().expect("online adapter active");
    println!(
        "  final correlated policy {final_policy}  (expected budget use {:.3} ≤ {BUDGET}); \
         independent A/B chose d = {d_ind:.2} ms vs correlated d = {:.2} ms",
        record.budget_used, record.delay,
    );

    // Budget adherence, on both layers: the adapter's own `(d, q)`
    // accounting must sit within the configured budget, and the
    // realized reissue rate must stay under the governor's safety
    // valve (1.25× the budget — see `HedgeConfig::budget_cap`).
    let stats = hedged.stats();
    let realized = stats.reissues as f64 / stats.queries.max(1) as f64;
    assert!(
        record.budget_used <= BUDGET + 0.01,
        "adapter policy exceeded the reissue budget: {:.3} > {BUDGET} + 1%",
        record.budget_used
    );
    assert!(
        realized <= 1.25 * BUDGET + 0.01,
        "realized reissue rate {realized:.3} exceeded the governor cap"
    );
    assert!(
        stats.pairs_exact + stats.pairs_censored > 0,
        "raced hedges must produce (primary, reissue) pairs"
    );

    // ── Phases 4a/4b: the §3 SingleR-vs-MultipleR comparison, static
    //    vs static at equal expected budget ──────────────────────────
    // Theorem 3.2 says the optimal MultipleR policy is matched by a
    // SingleR policy of the same budget; these phases run that
    // comparison end-to-end over TCP instead of in the analytical
    // model, replaying the trace under two *fixed* policies built from
    // phase 3's artifacts (static comparators, so neither side pays
    // adapter warm-up and the realized rates are directly comparable):
    //
    // * **SingleR comparator**: the adapted `(d*, q*)` as-is.
    // * **DoubleR**: the *identical* main stage `(d*, q*)` plus a
    //   near-degenerate deep rescue stage — a second chance for
    //   stragglers whose first reissue also landed badly. Identical
    //   main stages are the point, not a shortcut: the realized rate
    //   of a static policy is dominated by hedging's feedback on its
    //   own victim population, so two phases whose main stages differ
    //   — even at equal *solved* spend — drift apart in realized
    //   budget run to run, and under a binding governor the
    //   earlier-delay side has strictly higher demand and starves
    //   worse. With the main stages equal, both effects cancel by
    //   construction and the deep stage's sliver (≤ 0.1% of queries)
    //   is the entire difference. The deep `q₂` is kept near zero
    //   deliberately — this workload demonstrates why the optimal
    //   MultipleR collapses toward SingleR (Thm 3.2): whatever is
    //   still outstanding past `d*` is mostly the monsters themselves,
    //   and `q₁·q₂` is the probability a monster gets a *third* copy,
    //   which blacks out the entire 3-replica cluster for its whole
    //   service time.
    let samples = hedged_run.latency_ms.len().max(1) as f64;
    let surv = |d: f64| (hedged_run.latency_ms.count_over(d) as f64 / samples).max(1e-4);
    let d_star = record.delay.max(0.1);
    let q_star = record.probability.clamp(0.001, 1.0);
    let spend_target = q_star * surv(d_star);
    let d2 = 1.3 * d_star;
    let q2 = 0.004;
    let single_static = ReissuePolicy::single_r(d_star, q_star);
    let double_static = ReissuePolicy::double_r(d_star, q_star, d2, q2);
    let correlated_engaged = hedged.online_correlated();
    println!(
        "  §3 comparators from phase 3: {single_static} vs {double_static} \
         (shared main-stage spend {spend_target:.3}; deep-stage sliver {:.4})",
        q2 * surv(d2),
    );
    drop(hedged);

    let static_phase = |label: &str, policy: ReissuePolicy| {
        let (client, run, p99) = phase(
            label,
            &dataset,
            &trace,
            queries,
            HedgeConfig {
                policy,
                online: None,
                // The same safety valve the online phases get by
                // default; with identical main stages both phases put
                // identical demand on it, so any clipping lands on
                // them equally.
                budget_cap: Some(1.25 * BUDGET),
                workers: WORKERS,
                ..HedgeConfig::default()
            },
        );
        let stats = client.stats();
        let rate = stats.reissues as f64 / stats.queries.max(1) as f64;
        drop(run);
        (p99, rate, stats)
    };
    let (p99_srs, r_srs, _) = static_phase("hedged (SingleR static)", single_static);
    let (p99_multi, r_multi, stats_multi) = static_phase("hedged (DoubleR static)", double_static);

    if full_scale {
        assert_eq!(
            correlated_engaged,
            Some(true),
            "correlated optimizer should engage at full scale"
        );
        assert!(
            p99_hedged < p99_unhedged,
            "hedged P99 {p99_hedged:.2} ms should beat unhedged {p99_unhedged:.2} ms"
        );
        // The §3 comparison: at an equal realized reissue budget
        // (±1 percentage point), the two-stage schedule's P99 must not
        // lose to the SingleR comparator — and, per Theorem 3.2, has
        // no asymptotic edge to win big by either; its few-ms edge
        // here comes from the earlier main stage rescuing monster
        // victims sooner at the same spend.
        assert!(
            (r_multi - r_srs).abs() <= 0.01,
            "DoubleR realized rate {r_multi:.3} must match the static \
             SingleR comparator's {r_srs:.3} within ±1 point for a \
             fair §3 comparison"
        );
        assert!(
            stats_multi.reissues_by_stage.iter().sum::<u64>() == stats_multi.reissues,
            "per-stage accounting must cover every dispatch: {stats_multi:?}"
        );
        // The DoubleR side is the SingleR comparator plus a free
        // rescue sliver, so it is weakly better by construction — but
        // Thm 3.2 predicts near-equality, and the quantities compared
        // are two wall-clock P99s. Allow 1% relative plus 0.5 ms
        // absolute: in deep-d* regimes (P99 tens of ms) the relative
        // term dominates, while in shallow-d* regimes the adapter
        // rescues every monster victim and both P99s sit in the
        // low-single-digit body, where half a millisecond of scheduler
        // jitter dwarfs any percentage of the quantile.
        assert!(
            p99_multi <= p99_srs * 1.01 + 0.5,
            "DoubleR P99 {p99_multi:.2} ms must not lose to the static \
             SingleR comparator's {p99_srs:.2} ms (±1% + 0.5 ms) at \
             equal budget"
        );
        println!(
            "hedged P99 beats unhedged at the true target P{:.0}: \
             {p99_hedged:.2} ms < {p99_unhedged:.2} ms ({:.1}x reduction; \
             independent-model phase: {p99_ind:.2} ms); §3 static A/B at \
             equal budget ({r_multi:.3} vs {r_srs:.3}): DoubleR \
             {p99_multi:.2} ms ≤ SingleR {p99_srs:.2} ms",
            100.0 * TARGET_K,
            p99_unhedged / p99_hedged
        );
    } else {
        println!(
            "smoke run ({queries} queries): skipping tail assertions \
             (unhedged {p99_unhedged:.2} ms, independent {p99_ind:.2} ms, \
             correlated {p99_hedged:.2} ms; §3 static A/B: SingleR \
             {p99_srs:.2} ms at {r_srs:.3} vs DoubleR {p99_multi:.2} ms \
             at {r_multi:.3})"
        );
    }
}
