//! End-to-end Redis-like experiment (§6.2): generate the paper's
//! set-intersection dataset, measure real intersection costs through
//! the RESP command path, then drive the simulated 10-server cluster
//! and cut its P99 with an adaptively tuned SingleR policy.
//!
//! ```text
//! cargo run --release --example kv_set_intersection
//! ```

use bytes::BytesMut;
use reissue::kv::{resp, Command, Dataset, DatasetConfig, KvStore, Trace, WorkloadConfig};
use reissue::policy::ReissuePolicy;
use reissue::workloads::{self, RunConfig};

fn main() {
    // 1. Generate the dataset: 1000 sets over 1..=10^6, lognormal
    //    cardinalities (scaled down here for a fast demo).
    let dataset = Dataset::generate(DatasetConfig {
        num_sets: 500,
        ..DatasetConfig::default()
    });
    let (min, median, max) = dataset.cardinality_stats();
    println!(
        "dataset: {} sets, cardinalities min/median/max = {min}/{median}/{max}",
        dataset.sets.len()
    );

    // 2. Exercise the actual command path once, over the wire format.
    let mut store = KvStore::new();
    dataset.load_into(&mut store);
    let mut wire = BytesMut::new();
    resp::encode_command(
        &Command::SInterCard("set:0".into(), "set:1".into()),
        &mut wire,
    );
    let cmd = resp::decode_command(&mut wire).unwrap().unwrap();
    let (reply, cost) = store.execute(&cmd);
    println!("RESP round-trip: SINTERCARD set:0 set:1 -> {reply:?} (cost {cost} ops)");

    // 3. Measure the query trace: 20k random pair intersections,
    //    costs from real executions, calibrated to the paper's mean.
    let mut trace = Trace::generate(
        &dataset,
        WorkloadConfig {
            num_queries: 20_000,
            ..WorkloadConfig::default()
        },
    );
    trace.calibrate_to_mean(2.366);
    println!(
        "trace: mean = {:.3} ms, std = {:.2} ms, queries-of-death (>150ms): {}",
        trace.mean_ms(),
        trace.std_ms(),
        trace.count_above(150.0)
    );

    // 4. Simulate the cluster at 40% utilization and hedge.
    let spec = workloads::redis_cluster(trace.costs_ms.clone(), 0.40, 9);
    let run = RunConfig {
        seed: 3,
        ..RunConfig::new(20_000)
    };
    let base = spec.run(&run, &ReissuePolicy::None);
    println!(
        "\nbaseline: P50 = {:.1} ms, P99 = {:.1} ms (util {:.2})",
        base.quantile(0.5),
        base.quantile(0.99),
        base.utilization()
    );

    let budget = 0.03;
    let adapted = workloads::adapt_policy(&spec, &run, 0.99, budget, 0.5, 8);
    let tuned = spec.run(&run, &adapted.policy);
    println!(
        "SingleR tuned to budget {budget}: {} -> P99 = {:.1} ms (reissued {:.2}% of queries)",
        adapted.policy,
        tuned.quantile(0.99),
        100.0 * tuned.reissue_rate()
    );
    println!(
        "P99 reduction: {:.0}%",
        100.0 * (1.0 - tuned.quantile(0.99) / base.quantile(0.99))
    );
}
