//! Integration tests spanning the optimizer, the adaptive loop and the
//! cluster simulator — the full §4 pipeline against the §5 workloads.

use reissue::metrics::quantile;
use reissue::optimizer::{compute_optimal_single_r_correlated, predict_latency};
use reissue::policy::ReissuePolicy;
use reissue::workloads::{self, RunConfig};

/// The adaptive pipeline must beat the no-reissue baseline on the
/// paper's Queueing workload while staying on budget.
#[test]
fn adaptive_singler_cuts_tail_within_budget() {
    let spec = workloads::queueing(0.3, 0.5, 101);
    let run = RunConfig {
        seed: 11,
        ..RunConfig::new(25_000)
    };
    let (k, budget) = (0.95, 0.15);

    let base = spec.run(&run, &ReissuePolicy::None);
    let adapted = workloads::adapt_policy(&spec, &run, k, budget, 0.5, 8);
    let tuned = spec.run(&run, &adapted.policy);

    assert!(
        tuned.quantile(k) < base.quantile(k),
        "tuned {} !< base {}",
        tuned.quantile(k),
        base.quantile(k)
    );
    assert!(
        tuned.reissue_rate() <= budget + 0.05,
        "rate {} blew budget {budget}",
        tuned.reissue_rate()
    );
}

/// SingleR at a budget below 1−k must beat SingleD at the same budget
/// (SingleD provably cannot reduce the k-tail there, §2.4).
#[test]
fn randomization_wins_below_one_minus_k() {
    let spec = workloads::independent(102);
    let run = RunConfig {
        seed: 21,
        ..RunConfig::new(40_000)
    };
    let (k, budget) = (0.95, 0.02); // budget < 1-k = 0.05

    let opt = workloads::runner::optimal_policy_static(&spec, 50_000, k, budget, 5);
    let single_d = workloads::runner::single_d_static(&spec, 50_000, budget, 5);

    let base = spec.run(&run, &ReissuePolicy::None);
    let r = spec.run(&run, &opt.policy());
    let d = spec.run(&run, &single_d);

    // SingleR materially improves the tail; SingleD cannot (its delay
    // necessarily sits past the original P95).
    assert!(r.quantile(k) < 0.95 * base.quantile(k));
    assert!(d.quantile(k) >= 0.98 * base.quantile(k));
    assert!(r.quantile(k) < d.quantile(k));
}

/// The optimizer's prediction must match the simulator's realization
/// on a static (infinite-server) workload.
#[test]
fn optimizer_prediction_matches_simulation() {
    let spec = workloads::correlated(0.5, 103);
    let pairs = spec.sample_pairs(60_000, 31);
    let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let (k, budget) = (0.95, 0.1);

    let opt = compute_optimal_single_r_correlated(&rx, &pairs, k, budget);
    let run = RunConfig {
        seed: 41,
        ..RunConfig::new(60_000)
    };
    let sim = spec.run(&run, &opt.policy());
    let realized = sim.quantile(k);
    let rel = (opt.predicted_latency - realized).abs() / realized;
    assert!(
        rel < 0.1,
        "predicted {} vs realized {realized}",
        opt.predicted_latency
    );
    // And the measured reissue rate honors the budget.
    assert!(sim.reissue_rate() <= budget + 0.01);
}

/// `predict_latency` must agree with a from-scratch simulation of a
/// *given* policy, not just the optimizer's pick.
#[test]
fn predictor_consistency_on_fixed_policy() {
    let spec = workloads::independent(104);
    let pairs = spec.sample_pairs(50_000, 51);
    let rx: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let (d, q, k) = (30.0, 0.5, 0.95);

    let predicted = predict_latency(&rx, &pairs, k, d, q);
    let run = RunConfig {
        seed: 61,
        ..RunConfig::new(50_000)
    };
    let sim = spec.run(&run, &ReissuePolicy::single_r(d, q));
    let realized = sim.quantile(k);
    let rel = (predicted - realized).abs() / realized;
    assert!(rel < 0.1, "predicted {predicted} vs realized {realized}");
}

/// Correlation must push the optimal reissue delay earlier (Figure 3c's
/// key observation), end to end through sampled workloads.
#[test]
fn correlation_reissues_earlier_end_to_end() {
    let ind = workloads::runner::optimal_policy_static(
        &workloads::independent(105),
        60_000,
        0.95,
        0.1,
        71,
    );
    let cor = workloads::runner::optimal_policy_static(
        &workloads::correlated(0.9, 105),
        60_000,
        0.95,
        0.1,
        71,
    );
    assert!(
        cor.outstanding_at_delay > ind.outstanding_at_delay,
        "correlated {} should reissue earlier than independent {}",
        cor.outstanding_at_delay,
        ind.outstanding_at_delay
    );
    // And with lower probability (same budget spread over more
    // outstanding requests).
    assert!(cor.probability < ind.probability);
}

/// Latency records must satisfy basic conservation: every query's
/// realized latency is bounded by its primary response, and reissued
/// queries complete no later than dispatch delay + reissue response.
#[test]
fn simulation_conservation_laws() {
    let spec = workloads::queueing(0.4, 0.5, 106);
    let run = RunConfig {
        seed: 81,
        ..RunConfig::new(10_000)
    };
    let sim = spec.run(&run, &ReissuePolicy::single_r(10.0, 0.7));
    for rec in &sim.records {
        assert!(rec.latency.is_finite());
        assert!(rec.latency <= rec.primary_response + 1e-9);
        if rec.reissued && rec.reissue_response.is_finite() {
            assert!(rec.latency <= rec.reissue_dispatch_delay + rec.reissue_response + 1e-9);
        }
        if !rec.reissued {
            assert!((rec.latency - rec.primary_response).abs() < 1e-9);
        }
    }
    // Quantiles are monotone.
    let l = sim.latencies();
    assert!(quantile(&l, 0.5) <= quantile(&l, 0.95));
    assert!(quantile(&l, 0.95) <= quantile(&l, 0.99));
}
