//! Integration tests for the engine-backed system experiments (§6):
//! kvstore and searchengine traces driven through the cluster
//! simulator.

use reissue::kv::{Dataset, DatasetConfig, Trace, WorkloadConfig};
use reissue::policy::ReissuePolicy;
use reissue::search::{Corpus, CorpusConfig, QueryTrace, QueryWorkloadConfig};
use reissue::workloads::{self, RunConfig};

fn small_redis_costs(seed: u64) -> Vec<f64> {
    let dataset = Dataset::generate(DatasetConfig {
        num_sets: 400,
        seed,
        ..DatasetConfig::default()
    });
    let mut trace = Trace::generate(
        &dataset,
        WorkloadConfig {
            num_queries: 8_000,
            seed,
            ..WorkloadConfig::default()
        },
    );
    trace.calibrate_to_mean(2.366);
    trace.costs_ms
}

fn small_lucene_costs(seed: u64) -> Vec<f64> {
    let corpus = Corpus::generate(CorpusConfig {
        num_docs: 8_000,
        vocab: 15_000,
        seed,
        ..CorpusConfig::default()
    });
    let index = corpus.build_index();
    let mut trace = QueryTrace::generate(
        &index,
        QueryWorkloadConfig {
            num_queries: 4_000,
            seed,
            ..QueryWorkloadConfig::default()
        },
        100.0,
    );
    trace.calibrate_to_mean(39.73);
    trace.costs_ms
}

/// The Redis trace must exhibit the paper's shape: a tiny mean with
/// rare "queries of death" orders of magnitude above it.
#[test]
fn redis_trace_has_queries_of_death() {
    let costs = small_redis_costs(1);
    let n = costs.len() as f64;
    let mean = costs.iter().sum::<f64>() / n;
    assert!((mean - 2.366).abs() < 1e-9);
    let max = costs.iter().cloned().fold(0.0, f64::max);
    assert!(max > 40.0 * mean, "max {max} vs mean {mean}");
    let below10 = costs.iter().filter(|&&c| c < 10.0).count() as f64 / n;
    assert!(below10 > 0.9, "fast fraction {below10}");
}

/// The Lucene trace must be light-tailed with a moderate spread.
#[test]
fn lucene_trace_is_light_tailed() {
    let costs = small_lucene_costs(2);
    let n = costs.len() as f64;
    let mean = costs.iter().sum::<f64>() / n;
    assert!((mean - 39.73).abs() < 1e-9);
    let std = (costs.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n).sqrt();
    assert!(std < mean, "std {std} should be below mean {mean}");
    let above100 = costs.iter().filter(|&&c| c > 100.0).count() as f64 / n;
    assert!(above100 < 0.05, "tail fraction {above100}");
}

/// Round-robin connection scheduling must amplify the Redis tail
/// relative to plain FIFO under the same trace and load.
#[test]
fn round_robin_amplifies_redis_tail() {
    let costs = small_redis_costs(3);
    let rr = workloads::redis_cluster(costs.clone(), 0.4, 5);
    let mut fifo = rr.clone();
    fifo.cluster.discipline = simulator::Discipline::Fifo;
    let run = RunConfig {
        seed: 17,
        ..RunConfig::new(16_000)
    };
    let p99_rr = rr.run(&run, &ReissuePolicy::None).quantile(0.99);
    let p99_fifo = fifo.run(&run, &ReissuePolicy::None).quantile(0.99);
    // Round-robin lets every connection's queries queue behind a
    // monster; FIFO at least drains in arrival order. RR should not be
    // better, and typically is clearly worse in the deep tail.
    assert!(
        p99_rr >= 0.9 * p99_fifo,
        "rr {p99_rr} unexpectedly far below fifo {p99_fifo}"
    );
}

/// Hedging 1–3% of queries must reduce the Lucene cluster's P99 — the
/// paper's headline system result, end to end.
#[test]
fn lucene_hedging_cuts_p99() {
    let costs = small_lucene_costs(4);
    let spec = workloads::lucene_cluster(costs, 0.4, 7);
    let run = RunConfig {
        seed: 19,
        ..RunConfig::new(20_000)
    };
    let base = spec.run(&run, &ReissuePolicy::None);
    let adapted = workloads::adapt_policy(&spec, &run, 0.99, 0.02, 0.5, 8);
    let tuned = spec.run(&run, &adapted.policy);
    assert!(
        tuned.quantile(0.99) < base.quantile(0.99),
        "tuned {} !< base {}",
        tuned.quantile(0.99),
        base.quantile(0.99)
    );
    assert!(tuned.reissue_rate() < 0.04);
}

/// The Redis cluster's P99 is dominated by monster-induced blocking;
/// a late, high-probability SingleR policy must shave it.
#[test]
fn redis_hedging_cuts_p99() {
    let costs = small_redis_costs(5);
    let spec = workloads::redis_cluster(costs, 0.4, 9);
    let run = RunConfig {
        seed: 23,
        ..RunConfig::new(16_000)
    };
    let base = spec.run(&run, &ReissuePolicy::None);
    let adapted = workloads::adapt_policy(&spec, &run, 0.99, 0.05, 0.5, 8);
    let tuned = spec.run(&run, &adapted.policy);
    assert!(
        tuned.quantile(0.99) < base.quantile(0.99),
        "tuned {} !< base {}",
        tuned.quantile(0.99),
        base.quantile(0.99)
    );
}

/// Engine determinism: the same seeds must give byte-identical traces.
#[test]
fn traces_are_deterministic() {
    assert_eq!(small_redis_costs(11), small_redis_costs(11));
    assert_eq!(small_lucene_costs(12), small_lucene_costs(12));
    assert_ne!(small_redis_costs(11), small_redis_costs(13));
}
