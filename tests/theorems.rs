//! Numerical validation of the paper's §3 optimality theorems at
//! integration scope: SingleR vs DoubleR vs 3-stage MultipleR over
//! random empirical distributions, evaluated through the shared
//! analytical model.

use distributions::rng::seeded;
use distributions::{Exponential, LogNormal, Pareto, Sample};
use reissue::ecdf::Ecdf;
use reissue::model::{
    expected_budget, optimal_double_r_grid, optimal_single_r_grid, policy_quantile,
    success_probability,
};
use reissue::policy::ReissuePolicy;

const K: f64 = 0.95;

/// Theorem 3.1 on empirical (sampled) distributions: grid-optimal
/// DoubleR never beats grid-optimal SingleR beyond grid slack.
///
/// Tolerance rationale: the two families are swept on *different* grid
/// resolutions (48 SingleR delay points vs 14² DoubleR pairs — the
/// square keeps the test fast), so DoubleR can land nearer a quantile
/// jump of the 20 000-sample ECDF than SingleR's grid happens to. The
/// 7% slack bounds that discretization gap; the theorem's claim (no
/// *asymptotic* DoubleR advantage) would be violated by a gain of
/// O(quantile spread), far above 7%. Inputs are pinned by
/// `sampled_workloads`' seeded stream, so the margin is deterministic.
#[test]
fn theorem_3_1_on_empirical_distributions() {
    for (name, rx, ry) in sampled_workloads() {
        let x = Ecdf::new(rx);
        let y = Ecdf::new(ry);
        let d_max = x.quantile(0.999);
        for budget in [0.05, 0.15, 0.3] {
            let (_, t_single) = optimal_single_r_grid(&x, &y, K, budget, d_max, 48);
            let (_, t_double) = optimal_double_r_grid(&x, &y, K, budget, d_max, 14);
            assert!(
                t_double >= t_single * 0.93,
                "{name} B={budget}: DoubleR {t_double} beat SingleR {t_single} beyond slack"
            );
        }
    }
}

/// Theorem 3.2 flavor: random 3-stage MultipleR policies within budget
/// never achieve a lower k-quantile than the optimal SingleR.
///
/// Tolerance rationale: `policy_quantile` bisects to 1e-6 but the
/// SingleR side comes from a 64-point grid, so a random MultipleR can
/// sit up to one grid cell closer to the true optimum; 1% covers the
/// cell width at the Exp(1) P95 scale. The policy stream is pinned at
/// `seeded(99)`, making the sampled family — and the ≥ 50 in-budget
/// policies the guard insists on — identical on every run.
#[test]
fn theorem_3_2_random_multiple_r_never_wins() {
    let x = Exponential::new(1.0);
    let y = Exponential::new(1.0);
    let budget = 0.2;
    let d_max = 8.0;
    let (_, t_single) = optimal_single_r_grid(&x, &y, K, budget, d_max, 64);

    let mut rng = seeded(99);
    let mut tested = 0;
    for _ in 0..500 {
        // Random non-decreasing delays and probabilities.
        let mut ds: Vec<f64> = (0..3)
            .map(|_| d_max * rand::Rng::gen::<f64>(&mut rng))
            .collect();
        ds.sort_by(f64::total_cmp);
        let qs: Vec<f64> = (0..3).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
        let policy = ReissuePolicy::multiple_r(ds.iter().zip(&qs).map(|(&d, &q)| (d, q)).collect());
        if expected_budget(&policy, &x, &y) > budget {
            continue; // outside the budget class
        }
        tested += 1;
        let t = policy_quantile(&policy, &x, &y, K, 20.0, 1e-6);
        assert!(
            t >= t_single * 0.99,
            "MultipleR {policy} achieved {t} < SingleR optimum {t_single}"
        );
    }
    assert!(tested > 50, "too few in-budget policies sampled: {tested}");
}

/// The §3.1 MultipleR constraint: delays at or before the SingleD
/// delay d' with Pr(X > d') = B satisfy Pr(X > d_i) ≥ B — and the
/// model's budget for such policies caps each stage's spend at B.
#[test]
fn multiple_r_stage_budgets_bounded() {
    let x = Pareto::paper_default();
    let y = Pareto::paper_default();
    let budget = 0.1;
    // d' with Pr(X > d') = 0.1 for Pareto(1.1, 2): 2 * 0.1^(-1/1.1).
    let d_prime = 2.0 * (0.1f64).powf(-1.0 / 1.1);
    for frac in [0.0, 0.3, 0.7, 1.0] {
        let d = frac * d_prime;
        let p = ReissuePolicy::single_r(d, (budget / x_sf(&x, d)).min(1.0));
        let b = expected_budget(&p, &x, &y);
        assert!(b <= budget + 1e-9, "d={d}: budget {b}");
    }
}

fn x_sf(x: &Pareto, d: f64) -> f64 {
    use distributions::Cdf;
    x.sf(d).max(1e-12)
}

/// Equation (3) and the budget Equation (4) must be mutually
/// consistent on sampled data: plugging the optimizer's (d, q) back
/// into the model reproduces its predictions.
///
/// Tolerance rationale: the optimizer evaluates success on the raw
/// 30 000-sample vectors while the model integrates over the Ecdf's
/// step interpolation; their difference is O(1/√n) ≈ 0.006 here, so
/// 0.02 is a ~3x margin that still catches any real divergence
/// between Equation (3) and the sweep. Seed pinned at `seeded(7)`.
#[test]
fn optimizer_and_model_agree_on_samples() {
    let mut rng = seeded(7);
    let rx = LogNormal::new(1.0, 1.0).sample_n(&mut rng, 30_000);
    let ry = LogNormal::new(1.0, 1.0).sample_n(&mut rng, 30_000);
    let opt = reissue::optimizer::compute_optimal_single_r(&rx, &ry, K, 0.1);
    let x = Ecdf::new(rx);
    let y = Ecdf::new(ry);
    let model_success = success_probability(&opt.policy(), &x, &y, opt.predicted_latency);
    assert!(
        (model_success - opt.predicted_success).abs() < 0.02,
        "model {model_success} vs optimizer {}",
        opt.predicted_success
    );
    let model_budget = expected_budget(&opt.policy(), &x, &y);
    assert!(model_budget <= 0.1 + 1e-9);
}

/// Workload samples for the theorem tests, drawn from an explicitly
/// pinned stream (`seeded(11)`): every assertion above is made against
/// byte-identical data on every run, so the slacks are margins against
/// discretization, never against sampling luck.
fn sampled_workloads() -> Vec<(&'static str, Vec<f64>, Vec<f64>)> {
    let mut rng = seeded(11);
    let exp = Exponential::new(1.0);
    let par = Pareto::paper_default();
    let ln = LogNormal::new(1.0, 1.0);
    vec![
        (
            "exponential",
            exp.sample_n(&mut rng, 20_000),
            exp.sample_n(&mut rng, 20_000),
        ),
        (
            "pareto",
            par.sample_n(&mut rng, 20_000),
            par.sample_n(&mut rng, 20_000),
        ),
        (
            "lognormal",
            ln.sample_n(&mut rng, 20_000),
            ln.sample_n(&mut rng, 20_000),
        ),
        (
            "mixed",
            exp.sample_n(&mut rng, 20_000),
            par.sample_n(&mut rng, 20_000),
        ),
    ]
}
