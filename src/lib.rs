//! # reissue — optimal reissue policies for reducing tail latency
//!
//! A faithful, production-quality reproduction of
//! **Kaler, He, Elnikety — "Optimal Reissue Policies for Reducing Tail
//! Latency" (SPAA 2017)**.
//!
//! Interactive services hedge against stragglers by sending *reissue*
//! (duplicate) requests to replicas. This crate implements the paper's
//! **SingleR** policy family — reissue after delay `d` with probability
//! `q` — together with:
//!
//! * the data-driven optimizer `ComputeOptimalSingleR` that extracts the
//!   optimal `(d, q)` from response-time logs in `Θ(N + sort N)`
//!   ([`optimizer`]),
//! * a correlation-aware variant using orthogonal range queries,
//! * iterative adaptation for load-dependent queueing delays
//!   ([`adaptive`]), and budget search ([`budget`]),
//! * a discrete-event cluster simulator ([`sim`]), a Redis-like key-value
//!   store ([`kv`]) and a Lucene-like search engine ([`search`]) used to
//!   regenerate every figure of the paper's evaluation,
//! * and — beyond offline analysis — the [`hedge`] **speculative-execution
//!   runtime**: a `std`-only async executor, a TCP transport that puts the
//!   kvstore's round-robin loop behind real sockets, and a
//!   [`hedge::HedgedClient`] that dispatches the primary, arms the SingleR
//!   `(d, q)` timer, races a reissue against it, cancels the loser
//!   tied-request style on the wire (`CANCEL <seq>` retraction), and feeds
//!   observed latencies into [`online::OnlineAdapter`] so the policy
//!   re-optimizes *while serving traffic*,
//! * plus the [`shard`] tail-at-scale layer: a hash-partitioned
//!   keyspace, `N` shard groups × `R` replicas, and a scatter-gather
//!   [`shard::FanoutClient`] that hedges per shard under one shared
//!   cross-shard reissue budget (aggregate latency = max over legs).
//!
//! ## Quickstart
//!
//! Find the optimal SingleR policy for a latency log:
//!
//! ```
//! use reissue::optimizer::compute_optimal_single_r;
//!
//! // Response-time samples for primary and reissue requests (ms).
//! let primaries: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
//! let reissues = primaries.clone();
//!
//! // Minimize P99 while reissuing at most 5% of requests.
//! let policy = compute_optimal_single_r(&primaries, &reissues, 0.99, 0.05);
//! assert!(policy.budget_used <= 0.05 + 1e-9);
//! assert!(policy.predicted_latency <= 990.0);
//! println!(
//!     "reissue after {:.1} ms with probability {:.2}: predicted P99 {:.0} ms",
//!     policy.delay, policy.probability, policy.predicted_latency
//! );
//! ```
//!
//! Simulate a 10-server cluster and compare against no hedging:
//!
//! ```
//! use reissue::policy::ReissuePolicy;
//! use reissue::workloads::{queueing, RunConfig};
//!
//! let spec = queueing(0.3, 0.5, 7); // 30% utilization, r=0.5, seed
//! let base = spec.run(&RunConfig::new(20_000), &ReissuePolicy::None);
//! let hedged = spec.run(
//!     &RunConfig::new(20_000),
//!     &ReissuePolicy::single_r(30.0, 0.5),
//! );
//! let (p95_base, p95_hedged) = (base.quantile(0.95), hedged.quantile(0.95));
//! assert!(p95_hedged < p95_base);
//! ```
//!
//! ## Serve hedged traffic over TCP
//!
//! Spin up replicas and hedge against them (see
//! `examples/hedged_kv_cluster.rs` for the full three-replica
//! comparison):
//!
//! ```no_run
//! use reissue::hedge::{HedgeConfig, HedgedClient, TcpServerConfig};
//! use reissue::kv::{Command, KvStore};
//! use reissue::policy::ReissuePolicy;
//!
//! let replicas =
//!     reissue::hedge::spawn_replicas(3, &KvStore::new(), TcpServerConfig::default()).unwrap();
//! let addrs: Vec<_> = replicas.iter().map(|r| r.local_addr()).collect();
//! let client = HedgedClient::connect(&addrs, HedgeConfig {
//!     policy: ReissuePolicy::single_r(5.0, 0.2), // hedge after 5 ms, q = 0.2
//!     ..HedgeConfig::default()
//! }).unwrap();
//! let reply = client.execute_blocking(Command::Ping).unwrap();
//! println!("{reply:?} — stats: {:?}", client.stats());
//! ```
//!
//! See `examples/` for end-to-end walkthroughs and `crates/bench` for the
//! harness that regenerates each figure in the paper.

#![forbid(unsafe_code)]

pub use distributions as dist;
pub use hedge;
pub use kvstore as kv;
pub use rangequery;
pub use searchengine as search;
pub use shard;
pub use simulator as sim;
pub use workloads;

pub use reissue_core::adaptive;
pub use reissue_core::budget;
pub use reissue_core::ecdf;
pub use reissue_core::metrics;
pub use reissue_core::model;
pub use reissue_core::online;
pub use reissue_core::optimizer;
pub use reissue_core::policy;

/// The crate version, for binaries that want to report it.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
